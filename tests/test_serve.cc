/**
 * @file
 * Serving-subsystem tests: traffic-generator determinism (seed and
 * time-partition invariance), rate and mix sanity, streaming-cursor
 * mechanics, end-to-end serving runs (completion accounting, tail
 * percentiles, SLO fractions, overload drops), bit-identity across
 * reruns and thread-pool widths, dispatch policies, and the request
 * log format.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/allocator.hh"
#include "mgmt/performance_maximizer.hh"
#include "platform/experiment.hh"
#include "serve/serving.hh"
#include "serve/traffic.hh"
#include "workload/spec_suite.hh"
#include "workload/synthetic.hh"

namespace aapm
{
namespace
{

// --- traffic generator --------------------------------------------------

TEST(Traffic, SameSeedSameSequence)
{
    for (ArrivalProcess p : {ArrivalProcess::Poisson,
                             ArrivalProcess::Diurnal,
                             ArrivalProcess::Bursty}) {
        TrafficConfig tc;
        tc.process = p;
        tc.rateRps = 500.0;
        tc.seed = 7;
        TrafficGenerator a(tc, defaultRequestMix());
        TrafficGenerator b(tc, defaultRequestMix());
        std::vector<Request> ra, rb;
        a.generateUpTo(secondsToTicks(2.0), ra);
        b.generateUpTo(secondsToTicks(2.0), rb);
        ASSERT_EQ(ra.size(), rb.size());
        ASSERT_GT(ra.size(), 0u);
        for (size_t i = 0; i < ra.size(); ++i) {
            EXPECT_EQ(ra[i].id, rb[i].id);
            EXPECT_EQ(ra[i].cls, rb[i].cls);
            EXPECT_EQ(ra[i].arrival, rb[i].arrival);
        }
    }
}

TEST(Traffic, TimePartitionInvariant)
{
    // One big generateUpTo call and many small ones must emit the
    // exact same sequence: the first arrival past a bound is held, not
    // re-drawn.
    for (ArrivalProcess p : {ArrivalProcess::Poisson,
                             ArrivalProcess::Diurnal,
                             ArrivalProcess::Bursty}) {
        TrafficConfig tc;
        tc.process = p;
        tc.rateRps = 800.0;
        tc.seed = 42;
        TrafficGenerator whole(tc, defaultRequestMix());
        TrafficGenerator sliced(tc, defaultRequestMix());
        std::vector<Request> rw, rs;
        const Tick end = secondsToTicks(1.0);
        whole.generateUpTo(end, rw);
        const Tick step = 10 * TicksPerMs;
        for (Tick t = step; t <= end; t += step)
            sliced.generateUpTo(t, rs);
        ASSERT_EQ(rw.size(), rs.size());
        for (size_t i = 0; i < rw.size(); ++i) {
            EXPECT_EQ(rw[i].id, rs[i].id);
            EXPECT_EQ(rw[i].cls, rs[i].cls);
            EXPECT_EQ(rw[i].arrival, rs[i].arrival);
        }
    }
}

TEST(Traffic, LongRunRateMatchesConfig)
{
    // All three processes promise a long-run mean of rateRps. 20 s at
    // 1000 rps has sigma ~sqrt(20000); accept 5 sigma.
    for (ArrivalProcess p : {ArrivalProcess::Poisson,
                             ArrivalProcess::Diurnal,
                             ArrivalProcess::Bursty}) {
        TrafficConfig tc;
        tc.process = p;
        tc.rateRps = 1000.0;
        tc.seed = 3;
        TrafficGenerator gen(tc, defaultRequestMix());
        std::vector<Request> reqs;
        gen.generateUpTo(secondsToTicks(20.0), reqs);
        const double n = static_cast<double>(reqs.size());
        // The MMPP's state-occupancy fluctuations inflate the count
        // variance well beyond Poisson's; give it a relative bound.
        const double tol = p == ArrivalProcess::Bursty
            ? 0.10 * 20000.0
            : 5.0 * std::sqrt(20000.0);
        EXPECT_NEAR(n, 20000.0, tol) << arrivalProcessName(p);
    }
}

TEST(Traffic, ArrivalsAreMonotoneWithSequentialIds)
{
    TrafficConfig tc;
    tc.process = ArrivalProcess::Bursty;
    tc.rateRps = 2000.0;
    TrafficGenerator gen(tc, defaultRequestMix());
    std::vector<Request> reqs;
    gen.generateUpTo(secondsToTicks(1.0), reqs);
    ASSERT_GT(reqs.size(), 10u);
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(reqs[i].id, i);
        if (i > 0)
            EXPECT_GE(reqs[i].arrival, reqs[i - 1].arrival);
        EXPECT_LE(reqs[i].arrival, secondsToTicks(1.0));
    }
}

TEST(Traffic, MixWeightsRespected)
{
    std::vector<RequestClass> mix = parseRequestMix(
        "cpu:1000000:0.8,mem:2000000:0.2");
    ASSERT_EQ(mix.size(), 2u);
    TrafficConfig tc;
    tc.rateRps = 2000.0;
    TrafficGenerator gen(tc, mix);
    std::vector<Request> reqs;
    gen.generateUpTo(secondsToTicks(10.0), reqs);
    size_t cls0 = 0;
    for (const Request &r : reqs)
        cls0 += r.cls == 0 ? 1 : 0;
    const double frac =
        static_cast<double>(cls0) / static_cast<double>(reqs.size());
    EXPECT_NEAR(frac, 0.8, 0.03);
}

TEST(Traffic, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(parseRequestMix(""), std::runtime_error);
    EXPECT_THROW(parseRequestMix("cpu:1e6"), std::runtime_error);
    EXPECT_THROW(parseRequestMix("cpu:1e6:0.5:9"), std::runtime_error);
    EXPECT_THROW(parseRequestMix("gpu:1000000:1"), std::runtime_error);
    EXPECT_THROW(parseRequestMix("cpu:0:1"), std::runtime_error);
    EXPECT_THROW(parseRequestMix("cpu:1000000:0"), std::runtime_error);
    EXPECT_THROW(parseRequestMix("cpu:1000000:nan"),
                 std::runtime_error);
    EXPECT_THROW(parseRequestMix("cpu:1.5:1"), std::runtime_error);
    EXPECT_THROW(parseRequestMix("cpu:1000000x:1"),
                 std::runtime_error);
    EXPECT_THROW(parseArrivalProcess("fractal"), std::runtime_error);
    EXPECT_THROW(parseDispatchPolicy("lifo"), std::runtime_error);
    EXPECT_EQ(parseArrivalProcess("poisson"), ArrivalProcess::Poisson);
    EXPECT_EQ(parseDispatchPolicy("jsq"),
              DispatchPolicy::JoinShortestQueue);
}

TEST(Traffic, RejectsBadConfigs)
{
    TrafficConfig tc;
    tc.rateRps = 0.0;
    EXPECT_THROW(TrafficGenerator(tc, defaultRequestMix()),
                 std::runtime_error);
    tc.rateRps = 100.0;
    tc.process = ArrivalProcess::Diurnal;
    tc.diurnalDepth = 1.0;
    EXPECT_THROW(TrafficGenerator(tc, defaultRequestMix()),
                 std::runtime_error);
    tc.diurnalDepth = 0.5;
    tc.process = ArrivalProcess::Bursty;
    tc.burstRateMultiplier = 1.0;
    EXPECT_THROW(TrafficGenerator(tc, defaultRequestMix()),
                 std::runtime_error);
}

TEST(Traffic, RejectsNonFiniteConfigs)
{
    // Regression: NaN fails every `>` comparison, so a plain
    // `rate <= 0` guard let NaN through — and a NaN rate makes every
    // exponential gap NaN, which silently generates zero requests.
    // Library callers bypass the CLI's parseStrictDouble, so the
    // constructor itself must reject non-finite parameters.
    TrafficConfig tc;
    tc.rateRps = std::nan("");
    EXPECT_THROW(TrafficGenerator(tc, defaultRequestMix()),
                 std::runtime_error);
    tc.rateRps = std::numeric_limits<double>::infinity();
    EXPECT_THROW(TrafficGenerator(tc, defaultRequestMix()),
                 std::runtime_error);

    tc = TrafficConfig();
    auto mix = defaultRequestMix();
    mix[0].weight = std::nan("");
    EXPECT_THROW(TrafficGenerator(tc, mix), std::runtime_error);

    tc = TrafficConfig();
    tc.process = ArrivalProcess::Diurnal;
    tc.diurnalPeriodS = std::nan("");
    EXPECT_THROW(TrafficGenerator(tc, defaultRequestMix()),
                 std::runtime_error);

    tc = TrafficConfig();
    tc.process = ArrivalProcess::Bursty;
    tc.burstMeanS = std::nan("");
    EXPECT_THROW(TrafficGenerator(tc, defaultRequestMix()),
                 std::runtime_error);
    tc.burstMeanS = 0.05;
    tc.calmMeanS = std::numeric_limits<double>::infinity();
    EXPECT_THROW(TrafficGenerator(tc, defaultRequestMix()),
                 std::runtime_error);
    tc.calmMeanS = 0.25;
    tc.burstRateMultiplier = std::nan("");
    EXPECT_THROW(TrafficGenerator(tc, defaultRequestMix()),
                 std::runtime_error);
}

// --- streaming cursor ---------------------------------------------------

TEST(StreamingCursor, ConsumesSegmentsFifo)
{
    const auto mix = defaultRequestMix();
    Workload menu("menu", 1);
    Phase a = mix[0].phase;
    a.instructions = 1000;
    Phase b = mix[2].phase;
    b.instructions = 1000;
    menu.add(a).add(b);

    WorkloadCursor cursor(menu);
    cursor.enableStreaming();
    EXPECT_TRUE(cursor.streaming());
    EXPECT_TRUE(cursor.done());

    cursor.pushSegment(1, 300);
    cursor.pushSegment(0, 200);
    EXPECT_FALSE(cursor.done());
    EXPECT_EQ(cursor.queuedInstructions(), 500u);
    EXPECT_EQ(cursor.queuedSegments(), 2u);
    EXPECT_EQ(cursor.phaseIndex(), 1u);
    EXPECT_EQ(cursor.remainingInPhase(), 300u);

    cursor.retire(120);
    EXPECT_EQ(cursor.remainingInPhase(), 180u);
    cursor.retire(180);
    EXPECT_EQ(cursor.phaseIndex(), 0u);
    EXPECT_EQ(cursor.remainingInPhase(), 200u);
    EXPECT_EQ(cursor.queuedInstructions(), 200u);
    cursor.retire(200);
    EXPECT_TRUE(cursor.done());
    EXPECT_EQ(cursor.retired(), 500u);
    EXPECT_EQ(cursor.queuedInstructions(), 0u);
}

TEST(StreamingCursor, GuardsMisuse)
{
    Workload menu("menu", 1);
    Phase a = defaultRequestMix()[0].phase;
    a.instructions = 1000;
    menu.add(a);

    WorkloadCursor plain(menu);
    EXPECT_THROW(plain.pushSegment(0, 10), std::logic_error);
    plain.retire(10);
    EXPECT_THROW(plain.enableStreaming(), std::logic_error);

    WorkloadCursor streaming(menu);
    streaming.enableStreaming();
    EXPECT_THROW(streaming.pushSegment(1, 10), std::logic_error);
    EXPECT_THROW(streaming.pushSegment(0, 0), std::logic_error);
    streaming.pushSegment(0, 10);
    EXPECT_THROW(streaming.retire(11), std::logic_error);
    streaming.reset();
    EXPECT_TRUE(streaming.done());
    EXPECT_EQ(streaming.queuedInstructions(), 0u);
}

TEST(StreamingCursor, SingleInstructionBursts)
{
    // The degenerate burst: many one-instruction segments. Every
    // retire(1) crosses a segment boundary, so boundary bookkeeping
    // runs at its maximum rate.
    Workload menu("menu", 1);
    Phase a = defaultRequestMix()[0].phase;
    a.instructions = 1000;
    Phase b = defaultRequestMix()[1].phase;
    b.instructions = 1000;
    menu.add(a).add(b);

    WorkloadCursor cursor(menu);
    cursor.enableStreaming();
    const size_t n = 200;
    for (size_t i = 0; i < n; ++i)
        cursor.pushSegment(i % 2, 1);
    EXPECT_EQ(cursor.queuedInstructions(), n);
    EXPECT_EQ(cursor.queuedSegments(), n);

    for (size_t i = 0; i < n; ++i) {
        ASSERT_FALSE(cursor.done()) << i;
        EXPECT_EQ(cursor.phaseIndex(), i % 2) << i;
        EXPECT_EQ(cursor.remainingInPhase(), 1u) << i;
        cursor.retire(1);
    }
    EXPECT_TRUE(cursor.done());
    EXPECT_EQ(cursor.retired(), n);
    EXPECT_EQ(cursor.queuedInstructions(), 0u);
}

TEST(StreamingCursor, BackToBackBoundariesWithinOneDrain)
{
    // Segments of the same phase queued back to back stay distinct:
    // remainingInPhase() is bounded by the front segment, and an exact
    // front-sized retire pops straight into the next one.
    Workload menu("menu", 1);
    Phase a = defaultRequestMix()[0].phase;
    a.instructions = 1000;
    menu.add(a);

    WorkloadCursor cursor(menu);
    cursor.enableStreaming();
    cursor.pushSegment(0, 100);
    cursor.pushSegment(0, 50);
    cursor.pushSegment(0, 25);

    EXPECT_EQ(cursor.remainingInPhase(), 100u);
    // A retire can never straddle a segment boundary.
    EXPECT_THROW(cursor.retire(101), std::logic_error);
    cursor.retire(100);
    EXPECT_EQ(cursor.remainingInPhase(), 50u);
    EXPECT_EQ(cursor.queuedSegments(), 2u);
    cursor.retire(50);
    EXPECT_EQ(cursor.remainingInPhase(), 25u);
    // Partial retires inside the last segment accumulate correctly.
    cursor.retire(24);
    EXPECT_EQ(cursor.remainingInPhase(), 1u);
    cursor.retire(1);
    EXPECT_TRUE(cursor.done());
    EXPECT_EQ(cursor.retired(), 175u);

    // Refilling a drained cursor works; done() flips back.
    cursor.pushSegment(0, 10);
    EXPECT_FALSE(cursor.done());
    cursor.retire(10);
    EXPECT_TRUE(cursor.done());
    EXPECT_EQ(cursor.retired(), 185u);
}

// --- end-to-end serving -------------------------------------------------

class ServeTest : public ::testing::Test
{
  protected:
    static const PlatformConfig &
    config()
    {
        static const PlatformConfig c;
        return c;
    }

    static const TrainedModels &
    models()
    {
        static const TrainedModels m = trainModels(config());
        return m;
    }

    static const PowerEstimator &
    powerModel()
    {
        static const PowerEstimator p =
            models().powerEstimator(config().pstates);
        return p;
    }

    static ClusterConfig
    makeCluster(size_t cores, double budgetW)
    {
        ClusterConfig cc;
        for (size_t i = 0; i < cores; ++i) {
            ClusterCoreConfig core;
            core.platform = config();
            core.governor = [] {
                return std::make_unique<PerformanceMaximizer>(
                    powerModel(), PmConfig{.powerLimitW = 100.0});
            };
            core.powerModel = &powerModel();
            cc.cores.push_back(std::move(core));
        }
        cc.budgetW = budgetW;
        cc.recordTrace = false;
        return cc;
    }

    /** ~45% utilization: the default mix averages 8.65e6 instructions
     *  per request and a core sustains ~1.4e9 instr/s at full clock. */
    static ServingConfig
    lightLoad()
    {
        ServingConfig s;
        s.traffic.rateRps = 300.0;
        s.traffic.seed = 11;
        s.horizonS = 0.3;
        s.sloS = 0.05;
        return s;
    }
};

TEST_F(ServeTest, LightLoadCompletesEverythingWithinAccounting)
{
    UniformAllocator uniform;
    const ServingResult res =
        runServing(makeCluster(4, 60.0), lightLoad(), uniform);

    EXPECT_GT(res.offered, 50u);
    EXPECT_EQ(res.offered, res.completed + res.dropped + res.unfinished);
    EXPECT_EQ(res.unfinished, 0u);
    EXPECT_EQ(res.dropped, 0u);
    EXPECT_EQ(res.requests.size(), res.offered);
    EXPECT_TRUE(res.cluster.finished);
    EXPECT_GT(res.cluster.trueEnergyJ, 0.0);
    // Run lasts at least the horizon plus drain.
    EXPECT_GE(res.cluster.seconds, 0.3);

    ASSERT_EQ(res.latencies.size(), res.completed);
    EXPECT_GT(res.p50S, 0.0);
    EXPECT_LE(res.p50S, res.p99S);
    EXPECT_LE(res.p99S, res.p999S);
    // Uncongested 60 W x 4 cores: the tail stays within a few control
    // intervals.
    EXPECT_LT(res.p999S, 0.2);
    EXPECT_LT(res.sloViolationFrac, 0.5);
    EXPECT_GT(res.queueDepth.count(), 0u);

    for (const RequestRecord &rec : res.requests) {
        EXPECT_FALSE(rec.dropped);
        EXPECT_GT(rec.complete, 0u);
        EXPECT_GE(rec.complete, rec.arrival);
        EXPECT_LT(rec.core, 4u);
    }
}

TEST_F(ServeTest, BitIdenticalAcrossRerunsAndPoolWidths)
{
    UniformAllocator uniform;
    const ClusterConfig cc = makeCluster(4, 60.0);
    const ServingConfig sc = lightLoad();

    const ServingResult serial = runServing(cc, sc, uniform, nullptr);
    ThreadPool pool(3);
    const ServingResult pooled = runServing(cc, sc, uniform, &pool);
    const ServingResult again = runServing(cc, sc, uniform, &pool);

    for (const ServingResult *other : {&pooled, &again}) {
        EXPECT_EQ(serial.offered, other->offered);
        EXPECT_EQ(serial.completed, other->completed);
        EXPECT_EQ(serial.dropped, other->dropped);
        EXPECT_DOUBLE_EQ(serial.p50S, other->p50S);
        EXPECT_DOUBLE_EQ(serial.p99S, other->p99S);
        EXPECT_DOUBLE_EQ(serial.p999S, other->p999S);
        EXPECT_DOUBLE_EQ(serial.cluster.trueEnergyJ,
                         other->cluster.trueEnergyJ);
        ASSERT_EQ(serial.requests.size(), other->requests.size());
        for (size_t i = 0; i < serial.requests.size(); ++i) {
            EXPECT_EQ(serial.requests[i].core,
                      other->requests[i].core);
            EXPECT_EQ(serial.requests[i].complete,
                      other->requests[i].complete);
        }
    }
}

TEST_F(ServeTest, OverloadDropsAtTheQueueCap)
{
    ServingConfig s;
    s.traffic.rateRps = 3000.0;
    s.traffic.seed = 5;
    s.horizonS = 0.2;
    s.sloS = 0.02;
    s.queueCap = 4;
    UniformAllocator uniform;
    const ServingResult res =
        runServing(makeCluster(1, 16.0), s, uniform);

    EXPECT_GT(res.dropped, 0u);
    EXPECT_GT(res.sloViolationFrac, 0.3);
    EXPECT_EQ(res.offered, res.completed + res.dropped + res.unfinished);
    // The cap bounds every queue-depth sample.
    EXPECT_LE(res.queueDepth.max(), 4.0);
    size_t droppedRecords = 0;
    for (const RequestRecord &rec : res.requests) {
        droppedRecords += rec.dropped ? 1 : 0;
        if (rec.dropped)
            EXPECT_EQ(rec.complete, 0u);
    }
    EXPECT_EQ(droppedRecords, res.dropped);
}

TEST_F(ServeTest, MaxTimeCutoffLeavesUnfinishedRequests)
{
    ServingConfig s;
    s.traffic.rateRps = 2500.0;
    s.traffic.seed = 9;
    s.horizonS = 0.4;
    s.queueCap = 0; // unbounded: back up instead of dropping
    ClusterConfig cc = makeCluster(1, 16.0);
    for (auto &core : cc.cores)
        core.options.maxTime = secondsToTicks(0.1);
    UniformAllocator uniform;
    const ServingResult res = runServing(cc, s, uniform);

    EXPECT_FALSE(res.cluster.finished);
    EXPECT_GT(res.unfinished, 0u);
    EXPECT_EQ(res.offered, res.completed + res.dropped + res.unfinished);
}

TEST_F(ServeTest, DispatchPoliciesBothServe)
{
    UniformAllocator uniform;
    for (DispatchPolicy policy : {DispatchPolicy::RoundRobin,
                                  DispatchPolicy::JoinShortestQueue}) {
        ServingConfig s = lightLoad();
        s.dispatch = policy;
        const ServingResult res =
            runServing(makeCluster(4, 60.0), s, uniform);
        EXPECT_EQ(res.unfinished, 0u) << dispatchPolicyName(policy);
        EXPECT_GT(res.completed, 50u) << dispatchPolicyName(policy);
        // Every core took work.
        std::vector<size_t> perCore(4, 0);
        for (const RequestRecord &rec : res.requests)
            ++perCore[rec.core];
        for (size_t i = 0; i < perCore.size(); ++i)
            EXPECT_GT(perCore[i], 0u) << dispatchPolicyName(policy);
    }
}

TEST_F(ServeTest, RequestLogRoundTrips)
{
    UniformAllocator uniform;
    const ServingResult res =
        runServing(makeCluster(2, 30.0), lightLoad(), uniform);
    const std::string path =
        testing::TempDir() + "aapm_requests_test.jsonl";
    writeRequestLog(path, res, defaultRequestMix());

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    size_t lines = 0;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(line.find("\"aapm_requests\": 1"), std::string::npos);
    EXPECT_NE(line.find("\"offered\": "), std::string::npos);
    std::string last;
    while (std::getline(in, line)) {
        ++lines;
        last = line;
    }
    // offered records + end trailer.
    EXPECT_EQ(lines, res.offered + 1);
    EXPECT_NE(last.find("\"aapm_requests_end\": 1"),
              std::string::npos);
    // The trailer carries the per-class SLO breakdown.
    EXPECT_NE(last.find("\"class_stats\": ["), std::string::npos);
    EXPECT_NE(last.find("\"violation_frac\": "), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(ServeTest, ClassStatsPartitionTheAggregate)
{
    UniformAllocator uniform;
    const ServingResult res =
        runServing(makeCluster(4, 60.0), lightLoad(), uniform);
    const auto mix = defaultRequestMix();

    ASSERT_EQ(res.classes.size(), mix.size());
    uint64_t offered = 0, completed = 0, dropped = 0;
    for (size_t i = 0; i < res.classes.size(); ++i) {
        const ClassSloStats &cls = res.classes[i];
        EXPECT_EQ(cls.name, mix[i].name) << i;
        offered += cls.offered;
        completed += cls.completed;
        dropped += cls.dropped;
        EXPECT_GE(cls.violationFrac, 0.0) << i;
        EXPECT_LE(cls.violationFrac, 1.0) << i;
        if (cls.completed > 0) {
            EXPECT_GT(cls.p50S, 0.0) << i;
            EXPECT_LE(cls.p50S, cls.p99S) << i;
        }
    }
    // The classes partition the aggregate counts exactly.
    EXPECT_EQ(offered, res.offered);
    EXPECT_EQ(completed, res.completed);
    EXPECT_EQ(dropped, res.dropped);

    // Cross-check one class against the raw request records.
    uint64_t cls0 = 0;
    for (const RequestRecord &rec : res.requests)
        cls0 += rec.cls == 0 ? 1 : 0;
    EXPECT_EQ(cls0, res.classes[0].offered);
}

TEST_F(ServeTest, RejectsNonFiniteServingConfig)
{
    UniformAllocator uniform;
    ServingConfig s = lightLoad();
    s.horizonS = std::nan("");
    EXPECT_THROW(runServing(makeCluster(1, 16.0), s, uniform),
                 std::runtime_error);
    s = lightLoad();
    s.sloS = std::numeric_limits<double>::infinity();
    EXPECT_THROW(runServing(makeCluster(1, 16.0), s, uniform),
                 std::runtime_error);
}

TEST_F(ServeTest, TinyRequestsCompleteViaRetireWatermark)
{
    // Requests so short that many finish inside a single control
    // interval: completions must come from the retire watermark, not
    // from interval boundaries, and every arrival must be accounted.
    ServingConfig s;
    s.traffic.rateRps = 2000.0;
    s.traffic.seed = 17;
    s.horizonS = 0.2;
    s.sloS = 0.05;
    s.mix = parseRequestMix("cpu:1000:0.9,mem:100000:0.1");
    UniformAllocator uniform;
    const ServingResult res =
        runServing(makeCluster(2, 30.0), s, uniform);

    EXPECT_EQ(res.offered, res.completed + res.dropped + res.unfinished);
    EXPECT_EQ(res.unfinished, 0u);
    EXPECT_GT(res.completed, 100u);
    for (const RequestRecord &rec : res.requests) {
        if (rec.dropped)
            continue;
        EXPECT_GT(rec.complete, 0u);
        // Completion interpolates within the interval, so latency is
        // positive and tiny — well under one 10 ms control interval
        // for most requests, never behind the arrival.
        EXPECT_GE(rec.complete, rec.arrival);
    }
    EXPECT_GT(res.p50S, 0.0);
    EXPECT_LT(res.p50S, 0.01);
}

TEST_F(ServeTest, ServingMenuShapesFollowTheMix)
{
    const auto mix = defaultRequestMix();
    const Workload menu = servingMenu(mix, config().core);
    ASSERT_EQ(menu.phases().size(), mix.size() + 1);
    for (size_t i = 0; i < mix.size(); ++i) {
        EXPECT_EQ(menu.phases()[i].name, mix[i].name);
        EXPECT_EQ(menu.phases()[i].instructions,
                  mix[i].phase.instructions);
        EXPECT_FALSE(menu.phases()[i].idle);
    }
    EXPECT_TRUE(menu.phases().back().idle);
}

} // namespace
} // namespace aapm
