/**
 * @file
 * Tests for the trace-driven timing simulator and the analytical
 * model's validation against it.
 */

#include <gtest/gtest.h>

#include "cpu/core_model.hh"
#include "validation/trace_sim.hh"
#include "workload/microbench.hh"

namespace aapm
{
namespace
{

class TraceSimTest : public ::testing::Test
{
  protected:
    HierarchyConfig hier_;
    CoreParams core_;

    TraceSimResult
    run(LoopKind kind, uint64_t footprint, double f,
        uint64_t elems = 120'000)
    {
        return simulateLoopTiming({kind, footprint}, hier_, core_, f,
                                  elems);
    }
};

TEST_F(TraceSimTest, L1ResidentMatchesBaseCpi)
{
    for (LoopKind kind : {LoopKind::Daxpy, LoopKind::Fma, LoopKind::Mcopy,
                          LoopKind::MloadRand}) {
        const auto r = run(kind, 16 * 1024, 2.0);
        EXPECT_NEAR(r.cpi(), loopProperties(kind).baseCpi,
                    0.02 * loopProperties(kind).baseCpi)
            << loopKindName(kind);
        EXPECT_EQ(r.dramAccesses, 0u) << loopKindName(kind);
    }
}

TEST_F(TraceSimTest, DramFootprintsAreSlower)
{
    for (LoopKind kind : {LoopKind::Daxpy, LoopKind::Fma, LoopKind::Mcopy,
                          LoopKind::MloadRand}) {
        const auto small = run(kind, 16 * 1024, 2.0);
        const auto big = run(kind, 8 * 1024 * 1024, 2.0);
        EXPECT_GT(big.cpi(), 1.5 * small.cpi()) << loopKindName(kind);
        EXPECT_GT(big.dramAccesses, 0u) << loopKindName(kind);
    }
}

TEST_F(TraceSimTest, CpiGrowsWithFrequencyForMemoryLoops)
{
    for (LoopKind kind : {LoopKind::Daxpy, LoopKind::Fma,
                          LoopKind::MloadRand}) {
        const auto slow = run(kind, 8 * 1024 * 1024, 0.6);
        const auto fast = run(kind, 8 * 1024 * 1024, 2.0);
        EXPECT_GT(fast.cpi(), 1.3 * slow.cpi()) << loopKindName(kind);
    }
}

TEST_F(TraceSimTest, DependentChaseExposesFullLatency)
{
    // MLOAD_RAND at 8 MB: ~each access exposes the whole DRAM latency
    // in cycles (plus loop work).
    const auto r = run(LoopKind::MloadRand, 8 * 1024 * 1024, 2.0);
    const double dram_frac = static_cast<double>(r.dramAccesses) /
                             static_cast<double>(r.elements);
    const double expected =
        loopProperties(LoopKind::MloadRand).instrPerElem *
            loopProperties(LoopKind::MloadRand).baseCpi +
        dram_frac * core_.dramLatencyNs * 2.0;
    EXPECT_NEAR(r.cycles / static_cast<double>(r.elements), expected,
                0.05 * expected);
}

TEST_F(TraceSimTest, Deterministic)
{
    const auto a = run(LoopKind::MloadRand, 256 * 1024, 1.4);
    const auto b = run(LoopKind::MloadRand, 256 * 1024, 1.4);
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
}

TEST_F(TraceSimTest, BusOccupancyTracksTraffic)
{
    const auto r = run(LoopKind::Mcopy, 8 * 1024 * 1024, 2.0);
    EXPECT_GT(r.busBusyCycles, 0.0);
    // The bus cannot be busy longer than the run itself (single bus).
    EXPECT_LT(r.busBusyCycles, r.cycles * 1.05);
}

TEST_F(TraceSimTest, RejectsBadArguments)
{
    EXPECT_THROW(run(LoopKind::Fma, 256 * 1024, 0.0),
                 std::logic_error);
    EXPECT_THROW(simulateLoopTiming({LoopKind::Fma, 256 * 1024}, hier_,
                                    core_, 2.0, 0),
                 std::logic_error);
}

// ------------------------------------------------------------------ //
//       Cross-validation of the analytical model (per loop)          //
// ------------------------------------------------------------------ //

struct ValidationCase
{
    LoopKind kind;
    uint64_t footprint;
};

class ModelValidation : public ::testing::TestWithParam<ValidationCase>
{
  protected:
    HierarchyConfig hier_;
    CoreParams core_;
};

TEST_P(ModelValidation, AnalyticalModelBoundedAndConservative)
{
    const auto param = GetParam();
    const LoopSpec spec{param.kind, param.footprint};
    const Phase phase =
        characterizeLoop(spec, hier_, core_, 1'000'000);
    CoreModel model(core_);
    for (double f : {0.6, 1.2, 2.0}) {
        const auto trace =
            simulateLoopTiming(spec, hier_, core_, f, 120'000);
        const double m = model.cpi(phase, f);
        // Never optimistic by more than 5%, never conservative by
        // more than 2.2x.
        EXPECT_GT(m, trace.cpi() * 0.95)
            << spec.displayName() << " @ " << f;
        EXPECT_LT(m, trace.cpi() * 2.2)
            << spec.displayName() << " @ " << f;
    }
}

TEST_P(ModelValidation, FrequencyScalingAgrees)
{
    // The property every DVFS decision rests on: how CPI scales with
    // frequency must match the detailed reference closely.
    const auto param = GetParam();
    const LoopSpec spec{param.kind, param.footprint};
    const Phase phase =
        characterizeLoop(spec, hier_, core_, 1'000'000);
    CoreModel model(core_);
    const auto t06 = simulateLoopTiming(spec, hier_, core_, 0.6,
                                        120'000);
    const auto t20 = simulateLoopTiming(spec, hier_, core_, 2.0,
                                        120'000);
    const double trace_scale = t20.cpi() / t06.cpi();
    const double model_scale =
        model.cpi(phase, 2.0) / model.cpi(phase, 0.6);
    EXPECT_NEAR(model_scale, trace_scale, 0.12 * trace_scale)
        << spec.displayName();
}

INSTANTIATE_TEST_SUITE_P(
    AllLoops, ModelValidation,
    ::testing::Values(
        ValidationCase{LoopKind::Daxpy, 16 * 1024},
        ValidationCase{LoopKind::Daxpy, 256 * 1024},
        ValidationCase{LoopKind::Daxpy, 8 * 1024 * 1024},
        ValidationCase{LoopKind::Fma, 16 * 1024},
        ValidationCase{LoopKind::Fma, 256 * 1024},
        ValidationCase{LoopKind::Fma, 8 * 1024 * 1024},
        ValidationCase{LoopKind::Mcopy, 16 * 1024},
        ValidationCase{LoopKind::Mcopy, 256 * 1024},
        ValidationCase{LoopKind::Mcopy, 8 * 1024 * 1024},
        ValidationCase{LoopKind::MloadRand, 16 * 1024},
        ValidationCase{LoopKind::MloadRand, 256 * 1024},
        ValidationCase{LoopKind::MloadRand, 8 * 1024 * 1024}));

TEST(LoopStreamTest, DeterministicAndSized)
{
    LoopStream a({LoopKind::MloadRand, 64 * 1024}, 3);
    LoopStream b({LoopKind::MloadRand, 64 * 1024}, 3);
    std::vector<MemRef> ra, rb;
    for (int i = 0; i < 1000; ++i) {
        a.next(ra);
        b.next(rb);
        ASSERT_EQ(ra.size(), rb.size());
        ASSERT_EQ(ra[0].addr, rb[0].addr);
    }
    EXPECT_EQ(a.generated(), 1000u);
    EXPECT_EQ(a.elementsPerPass(), 64u * 1024 / 8);
}

TEST(LoopStreamTest, RefCountsMatchProperties)
{
    for (LoopKind kind : {LoopKind::Daxpy, LoopKind::Fma, LoopKind::Mcopy,
                          LoopKind::MloadRand}) {
        LoopStream s({kind, 64 * 1024});
        std::vector<MemRef> refs;
        s.next(refs);
        EXPECT_EQ(static_cast<double>(refs.size()),
                  loopProperties(kind).accessesPerElem)
            << loopKindName(kind);
    }
}

TEST(LoopStreamTest, RejectsTinyFootprint)
{
    EXPECT_THROW(LoopStream({LoopKind::Fma, 1024}),
                 std::runtime_error);
}

} // namespace
} // namespace aapm
