/**
 * @file
 * Failure-injection tests: sensor glitches and stuck readings, the
 * feedback governors' robustness to them, the unified FaultPlan /
 * FaultInjector subsystem (PMU, DVFS actuator and sensor layers) and
 * the GovernorSupervisor's recovery guarantees — including the
 * contract that an inactive or inert plan leaves the simulation
 * bit-identical to one without the fault subsystem.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "mgmt/performance_maximizer.hh"
#include "mgmt/pm_adaptive.hh"
#include "mgmt/pm_feedback.hh"
#include "mgmt/supervisor.hh"
#include "platform/experiment.hh"
#include "sensor/power_sensor.hh"
#include "workload/spec_suite.hh"

namespace aapm
{
namespace
{

TEST(SensorFaults, GlitchesAppearAtConfiguredRate)
{
    SensorConfig cfg;
    cfg.glitchProb = 0.05;
    cfg.noiseSigmaW = 0.0;
    cfg.gainErrorMax = 0.0;
    cfg.offsetErrorMaxW = 0.0;
    PowerSensor sensor(cfg);
    int far_off = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (std::abs(sensor.sample(15.0) - 15.0) > 2.0)
            ++far_off;
    }
    // Glitches are uniform over 0..40 W; ~90% of them land > 2 W away.
    EXPECT_NEAR(static_cast<double>(far_off) / n, 0.045, 0.01);
}

TEST(SensorFaults, StuckRepeatsPreviousReading)
{
    SensorConfig cfg;
    cfg.stuckProb = 1.0;   // always stuck after the first sample
    PowerSensor sensor(cfg);
    const double first = sensor.sample(10.0);
    (void)first;
    // From now on every call repeats the last value regardless of
    // input. (The first call may itself report the initial 0.)
    const double a = sensor.sample(20.0);
    const double b = sensor.sample(5.0);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(SensorFaults, ZeroProbabilityIsFaultFree)
{
    SensorConfig clean;
    SensorConfig same = clean;
    same.glitchProb = 0.0;
    same.stuckProb = 0.0;
    PowerSensor a(clean), b(same);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.sample(12.0), b.sample(12.0));
}

class FaultyPlatformTest : public ::testing::Test
{
  protected:
    static const TrainedModels &
    models()
    {
        static const TrainedModels m = trainModels(PlatformConfig{});
        return m;
    }

    static RunResult
    runWithGlitches(Governor &governor, double glitch_prob)
    {
        PlatformConfig config;
        config.sensor.glitchProb = glitch_prob;
        Platform platform(config);
        const Workload w = specWorkload("gzip", config.core, 3.0);
        return platform.run(w, governor);
    }
};

TEST_F(FaultyPlatformTest, PlainPmUnaffectedBySensorFaults)
{
    // PM never reads the sensor; glitches must not change its control.
    PerformanceMaximizer clean_pm(
        models().powerEstimator(PStateTable::pentiumM()),
        PmConfig{.powerLimitW = 14.5});
    const RunResult clean = runWithGlitches(clean_pm, 0.0);
    PerformanceMaximizer faulty_pm(
        models().powerEstimator(PStateTable::pentiumM()),
        PmConfig{.powerLimitW = 14.5});
    const RunResult faulty = runWithGlitches(faulty_pm, 0.05);
    EXPECT_DOUBLE_EQ(clean.seconds, faulty.seconds);
    EXPECT_EQ(clean.dvfs.transitions, faulty.dvfs.transitions);
}

TEST_F(FaultyPlatformTest, FeedbackPmDegradesGracefully)
{
    // PM-F consumes the sensor; its clamped EWMA must keep occasional
    // glitches from wrecking performance (bounded slowdown vs clean).
    PmFeedback clean_pm(
        models().powerEstimator(PStateTable::pentiumM()),
        PmConfig{.powerLimitW = 14.5});
    const RunResult clean = runWithGlitches(clean_pm, 0.0);
    PmFeedback faulty_pm(
        models().powerEstimator(PStateTable::pentiumM()),
        PmConfig{.powerLimitW = 14.5});
    const RunResult faulty = runWithGlitches(faulty_pm, 0.02);
    EXPECT_LT(faulty.seconds, clean.seconds * 1.15);
    EXPECT_TRUE(faulty.finished);
}

TEST_F(FaultyPlatformTest, AdaptivePmSurvivesGlitches)
{
    // PM-A's RLS sees corrupted samples; forgetting plus the residual
    // clamp keep the run sane.
    PmAdaptive clean_pm(
        models().powerEstimator(PStateTable::pentiumM()),
        PmConfig{.powerLimitW = 14.5});
    const RunResult clean = runWithGlitches(clean_pm, 0.0);
    PmAdaptive faulty_pm(
        models().powerEstimator(PStateTable::pentiumM()),
        PmConfig{.powerLimitW = 14.5});
    const RunResult faulty = runWithGlitches(faulty_pm, 0.02);
    EXPECT_TRUE(faulty.finished);
    EXPECT_LT(faulty.seconds, clean.seconds * 1.25);
}

TEST(FaultPlanSpec, DefaultIsInactiveMixedIsActive)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.active());
    EXPECT_TRUE(FaultPlan::mixed(0.1).active());
    // A scheduled one-shot alone also makes the plan active.
    FaultPlan scheduled;
    scheduled.scheduled.push_back(
        {secondsToTicks(1.0), ScheduledFault::Kind::DvfsStuck, 10});
    EXPECT_TRUE(scheduled.active());
    // Explicit "none"/"off" specs parse to an inactive plan, so sweep
    // scripts can pass a clean baseline through the same flag.
    EXPECT_FALSE(FaultPlan::parse("none").active());
    EXPECT_FALSE(FaultPlan::parse("off").active());
}

TEST(FaultPlanSpec, ParseMixedPreset)
{
    const FaultPlan plan = FaultPlan::parse("mixed:0.2");
    EXPECT_TRUE(plan.active());
    EXPECT_DOUBLE_EQ(plan.pmuDropoutProb, 0.2);
    EXPECT_DOUBLE_EQ(plan.dvfsRejectProb, 0.2);
    EXPECT_DOUBLE_EQ(plan.sensorDropProb, 0.2);
}

TEST(FaultPlanSpec, ParseKeyValueAndScheduled)
{
    const FaultPlan plan = FaultPlan::parse(
        "pmu-dropout=0.05,dvfs-stuck-intervals=40,seed=7,"
        "at=0.5:dvfs-stuck:12");
    EXPECT_DOUBLE_EQ(plan.pmuDropoutProb, 0.05);
    EXPECT_EQ(plan.dvfsStuckIntervals, 40u);
    EXPECT_EQ(plan.seed, 7u);
    ASSERT_EQ(plan.scheduled.size(), 1u);
    EXPECT_EQ(plan.scheduled[0].when, secondsToTicks(0.5));
    EXPECT_EQ(plan.scheduled[0].kind, ScheduledFault::Kind::DvfsStuck);
    EXPECT_EQ(plan.scheduled[0].intervals, 12u);
}

TEST(FaultPlanSpec, ParseRejectsGarbage)
{
    EXPECT_THROW(FaultPlan::parse("bogus=1"), std::runtime_error);
    EXPECT_THROW(FaultPlan::parse("pmu-dropout=1.5"),
                 std::runtime_error);
    EXPECT_THROW(FaultPlan::parse("at=0.5:nonsense:3"),
                 std::runtime_error);
}

TEST(FaultPlanSpec, RejectsDuplicateKeys)
{
    // A repeated scalar key silently overwriting its predecessor is a
    // typo'd experiment, not a configuration.
    EXPECT_THROW(FaultPlan::parse("pmu-dropout=0.1,pmu-dropout=0.2"),
                 std::runtime_error);
    EXPECT_THROW(FaultPlan::parse("seed=1,seed=2"),
                 std::runtime_error);
    // "at" is the schedule list and may repeat freely.
    const FaultPlan plan =
        FaultPlan::parse("at=0.5:dvfs-stuck:3,at=1.0:sensor-drop:2");
    EXPECT_EQ(plan.scheduled.size(), 2u);
}

TEST(FaultPlanSpec, ParseDvfsLatencyScheduled)
{
    const FaultPlan plan =
        FaultPlan::parse("at=0.5:dvfs-latency:12,dvfs-latency-factor=4");
    ASSERT_EQ(plan.scheduled.size(), 1u);
    EXPECT_EQ(plan.scheduled[0].kind,
              ScheduledFault::Kind::DvfsLatency);
    EXPECT_EQ(plan.scheduled[0].intervals, 12u);
    EXPECT_DOUBLE_EQ(plan.dvfsLatencyFactor, 4.0);
}

TEST(FaultInjectorUnit, ScheduledLatencyStormInflatesWithoutRngDraws)
{
    // A scheduled latency window multiplies every accepted write's
    // stall without touching the RNG — the stream a probabilistic
    // plan would consume must stay untouched, or an otherwise inert
    // plan would decohere from the clean run outside the window.
    FaultPlan plan;
    plan.dvfsLatencyFactor = 3.0;
    plan.scheduled.push_back(
        {100, ScheduledFault::Kind::DvfsLatency, 2});

    FaultInjector inj(plan);
    inj.beginInterval(0);
    EXPECT_DOUBLE_EQ(inj.stallMultiplier(), 1.0);
    inj.beginInterval(100);   // the storm fires
    EXPECT_DOUBLE_EQ(inj.stallMultiplier(), 3.0);
    inj.beginInterval(200);   // second interval of the window
    EXPECT_DOUBLE_EQ(inj.stallMultiplier(), 3.0);
    inj.beginInterval(300);   // window over
    EXPECT_DOUBLE_EQ(inj.stallMultiplier(), 1.0);
    EXPECT_EQ(inj.telemetry().dvfsLatencySpikes, 2u);
    EXPECT_EQ(inj.unfiredScheduled(), 0u);
}

TEST(FaultInjectorUnit, DeterministicPerSeed)
{
    const FaultPlan plan = FaultPlan::mixed(0.3);
    FaultInjector a(plan), b(plan), c(plan, 999);
    bool any_c_differs = false;
    for (uint64_t i = 0; i < 200; ++i) {
        a.beginInterval(i * 10 * TicksPerMs);
        b.beginInterval(i * 10 * TicksPerMs);
        c.beginInterval(i * 10 * TicksPerMs);
        const uint64_t da = a.filterCounterDelta(0, 1000);
        const uint64_t db = b.filterCounterDelta(0, 1000);
        if (da != c.filterCounterDelta(0, 1000))
            any_c_differs = true;
        EXPECT_EQ(da, db);
        EXPECT_EQ(a.filterPStateWrite(), b.filterPStateWrite());
        (void)c.filterPStateWrite();
    }
    EXPECT_EQ(a.telemetry().faultsSeen(), b.telemetry().faultsSeen());
    // A seed override must produce a different fault sequence.
    EXPECT_TRUE(any_c_differs ||
                a.telemetry().faultsSeen() !=
                    c.telemetry().faultsSeen());
}

/**
 * Platform-level fault-injection fixture: PM runs on gzip with a tight
 * power limit, with or without the supervisor, under a given plan.
 */
class FaultInjectionTest : public ::testing::Test
{
  protected:
    static constexpr double kLimitW = 11.5;
    static constexpr double kSeconds = 3.0;

    static const TrainedModels &
    models()
    {
        static const TrainedModels m = trainModels(PlatformConfig{});
        return m;
    }

    static RunResult
    runPm(const FaultPlan &plan, bool supervise,
          bool force_chunked = false, uint64_t fault_seed = 0)
    {
        PlatformConfig config;
        Platform platform(config);
        const PowerEstimator power =
            models().powerEstimator(config.pstates);
        const Workload w = specWorkload("gzip", config.core, kSeconds);
        RunOptions opts;
        opts.faultPlan = plan;
        opts.faultSeed = fault_seed;
        opts.forceChunkedKernel = force_chunked;
        auto pm = std::make_unique<PerformanceMaximizer>(
            power, PmConfig{.powerLimitW = kLimitW});
        if (!supervise)
            return platform.run(w, *pm, opts);
        GovernorSupervisor sup(std::move(pm), SupervisorConfig(),
                               &power);
        return platform.run(w, sup, opts);
    }

    static double
    violationRate(const RunResult &r)
    {
        // Judged on ground truth over the paper's 100 ms windows:
        // measured samples can be NaN under sensor drops.
        return r.trace.fractionOverLimitTrue(kLimitW, 10);
    }
};

TEST_F(FaultInjectionTest, InertPlanBitIdenticalToNoPlan)
{
    // An *active* plan whose only fault is scheduled beyond the end of
    // the run: the injector is instantiated, sits in the loop, and must
    // not perturb a single bit of the result.
    FaultPlan inert;
    inert.scheduled.push_back(
        {secondsToTicks(1e6), ScheduledFault::Kind::PmuDropout, 1});
    ASSERT_TRUE(inert.active());

    const RunResult clean = runPm(FaultPlan{}, false);
    const RunResult armed = runPm(inert, false);

    EXPECT_EQ(clean.instructions, armed.instructions);
    EXPECT_DOUBLE_EQ(clean.seconds, armed.seconds);
    EXPECT_DOUBLE_EQ(clean.trueEnergyJ, armed.trueEnergyJ);
    EXPECT_DOUBLE_EQ(clean.measuredEnergyJ, armed.measuredEnergyJ);
    EXPECT_EQ(clean.dvfs.transitions, armed.dvfs.transitions);
    EXPECT_EQ(clean.dvfs.stallTicks, armed.dvfs.stallTicks);
    ASSERT_EQ(clean.trace.samples().size(),
              armed.trace.samples().size());
    for (size_t i = 0; i < clean.trace.samples().size(); ++i) {
        EXPECT_EQ(clean.trace.samples()[i].pstateIndex,
                  armed.trace.samples()[i].pstateIndex) << i;
        EXPECT_DOUBLE_EQ(clean.trace.samples()[i].measuredW,
                         armed.trace.samples()[i].measuredW) << i;
    }
    EXPECT_EQ(armed.recovery.faultsSeen(), 0u);
}

TEST_F(FaultInjectionTest, FaultRunsAreReproducible)
{
    const FaultPlan plan = FaultPlan::mixed(0.1);
    const RunResult a = runPm(plan, true);
    const RunResult b = runPm(plan, true);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.trueEnergyJ, b.trueEnergyJ);
    EXPECT_EQ(a.recovery.faultsSeen(), b.recovery.faultsSeen());
    EXPECT_EQ(a.recovery.recoveryActions(),
              b.recovery.recoveryActions());
    // A different fault seed yields a different fault stream.
    const RunResult c = runPm(plan, true, false, 4242);
    EXPECT_NE(a.recovery.faultsSeen(), c.recovery.faultsSeen());
}

TEST_F(FaultInjectionTest, KernelEquivalentUnderActiveFaults)
{
    // Faults are drawn per interval, never per chunk, so the fast and
    // chunked kernels see the identical fault stream and must stay
    // equivalent even while faults fire.
    const FaultPlan plan = FaultPlan::mixed(0.05);
    const RunResult fast = runPm(plan, true, false);
    const RunResult chunked = runPm(plan, true, true);

    EXPECT_EQ(fast.instructions, chunked.instructions);
    EXPECT_DOUBLE_EQ(fast.seconds, chunked.seconds);
    EXPECT_EQ(fast.dvfs.transitions, chunked.dvfs.transitions);
    EXPECT_EQ(fast.dvfs.stallTicks, chunked.dvfs.stallTicks);
    EXPECT_EQ(fast.recovery.faultsSeen(),
              chunked.recovery.faultsSeen());
    EXPECT_NEAR(fast.trueEnergyJ, chunked.trueEnergyJ,
                std::abs(chunked.trueEnergyJ) * 1e-12);
    ASSERT_EQ(fast.trace.samples().size(),
              chunked.trace.samples().size());
    for (size_t i = 0; i < fast.trace.samples().size(); ++i) {
        EXPECT_EQ(fast.trace.samples()[i].pstateIndex,
                  chunked.trace.samples()[i].pstateIndex) << i;
    }
}

TEST_F(FaultInjectionTest, PmuDropoutTriggersSubstitution)
{
    // A long scheduled PMU dropout zeroes PM's decoded-instruction
    // counter mid-run. Unsupervised PM misreads that as a near-idle
    // core; the supervisor must recognize busy-but-zero as a dropout
    // and substitute the last good reading.
    FaultPlan plan;
    plan.scheduled.push_back(
        {secondsToTicks(1.0), ScheduledFault::Kind::PmuDropout, 30});

    const RunResult sup = runPm(plan, true);
    EXPECT_TRUE(sup.finished);
    EXPECT_GT(sup.recovery.pmuZeroedReads, 0u);
    EXPECT_GT(sup.recovery.substitutions, 0u);

    const RunResult unsup = runPm(plan, false);
    EXPECT_TRUE(unsup.finished);
    // The supervisor keeps the violation rate at or below the
    // unsupervised run's.
    EXPECT_LE(violationRate(sup), violationRate(unsup));
}

TEST_F(FaultInjectionTest, StuckPStateIsRetriedWithinBounds)
{
    FaultPlan plan;
    plan.dvfsStuckProb = 0.15;
    plan.dvfsStuckIntervals = 20;

    const RunResult sup = runPm(plan, true);
    EXPECT_TRUE(sup.finished);
    EXPECT_GT(sup.recovery.dvfsStuckDenied, 0u);
    EXPECT_GT(sup.recovery.dvfsRetries, 0u);
    // Bounded retry: never more re-issues than failed writes times the
    // retry limit.
    const SupervisorConfig cfg;
    EXPECT_LE(sup.recovery.dvfsRetries,
              (sup.recovery.dvfsStuckDenied +
               sup.recovery.dvfsRejected) * cfg.dvfsRetryLimit);
}

TEST_F(FaultInjectionTest, SupervisorBoundsViolationsUnderMixedFaults)
{
    // The headline resilience claim: at 10% mixed fault intensity the
    // supervised governor violates the power limit strictly less than
    // the unsupervised one, and stays within 2x the fault-free rate
    // (plus a small absolute floor for when the clean rate is ~0).
    const double clean = violationRate(runPm(FaultPlan{}, false));

    const FaultPlan plan = FaultPlan::mixed(0.1);
    const double unsup = violationRate(runPm(plan, false));
    const double sup = violationRate(runPm(plan, true));

    EXPECT_LT(sup, unsup);
    EXPECT_LE(sup, std::max(2.0 * clean, 0.05));
}

TEST_F(FaultInjectionTest, WatchdogHoldExtendingPastRunEndIsClean)
{
    // A fallback hold longer than the remaining run: the supervisor
    // trips once, rides the safe p-state to the end, and the run must
    // still terminate normally with the hold visibly still in force.
    PlatformConfig config;
    Platform platform(config);
    const PowerEstimator power =
        models().powerEstimator(config.pstates);
    const Workload w = specWorkload("gzip", config.core, kSeconds);
    PerformanceMaximizer pm(power, PmConfig{.powerLimitW = kLimitW});
    SupervisorConfig cfg;
    cfg.watchdogWindow = 5;
    cfg.watchdogResidualW = 1e-6;   // trips once the window fills
    cfg.fallbackHold = size_t(1) << 30;
    GovernorSupervisor sup(pm, cfg, &power);

    const RunResult r = platform.run(w, sup, RunOptions{});
    EXPECT_TRUE(r.finished);
    EXPECT_EQ(r.recovery.fallbackEntries, 1u);
    EXPECT_GE(r.recovery.degradedIntervals, 100u);
    // The hold outlives the run instead of wrapping or resetting.
    EXPECT_TRUE(sup.inFallback());
}

} // namespace
} // namespace aapm
