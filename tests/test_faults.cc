/**
 * @file
 * Failure-injection tests: sensor glitches and stuck readings, and the
 * feedback governors' robustness to them (a feedback loop built on a
 * corrupted sensor must not be worse than no feedback at all).
 */

#include <gtest/gtest.h>

#include "mgmt/performance_maximizer.hh"
#include "mgmt/pm_adaptive.hh"
#include "mgmt/pm_feedback.hh"
#include "platform/experiment.hh"
#include "sensor/power_sensor.hh"
#include "workload/spec_suite.hh"

namespace aapm
{
namespace
{

TEST(SensorFaults, GlitchesAppearAtConfiguredRate)
{
    SensorConfig cfg;
    cfg.glitchProb = 0.05;
    cfg.noiseSigmaW = 0.0;
    cfg.gainErrorMax = 0.0;
    cfg.offsetErrorMaxW = 0.0;
    PowerSensor sensor(cfg);
    int far_off = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (std::abs(sensor.sample(15.0) - 15.0) > 2.0)
            ++far_off;
    }
    // Glitches are uniform over 0..40 W; ~90% of them land > 2 W away.
    EXPECT_NEAR(static_cast<double>(far_off) / n, 0.045, 0.01);
}

TEST(SensorFaults, StuckRepeatsPreviousReading)
{
    SensorConfig cfg;
    cfg.stuckProb = 1.0;   // always stuck after the first sample
    PowerSensor sensor(cfg);
    const double first = sensor.sample(10.0);
    (void)first;
    // From now on every call repeats the last value regardless of
    // input. (The first call may itself report the initial 0.)
    const double a = sensor.sample(20.0);
    const double b = sensor.sample(5.0);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(SensorFaults, ZeroProbabilityIsFaultFree)
{
    SensorConfig clean;
    SensorConfig same = clean;
    same.glitchProb = 0.0;
    same.stuckProb = 0.0;
    PowerSensor a(clean), b(same);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.sample(12.0), b.sample(12.0));
}

class FaultyPlatformTest : public ::testing::Test
{
  protected:
    static const TrainedModels &
    models()
    {
        static const TrainedModels m = trainModels(PlatformConfig{});
        return m;
    }

    static RunResult
    runWithGlitches(Governor &governor, double glitch_prob)
    {
        PlatformConfig config;
        config.sensor.glitchProb = glitch_prob;
        Platform platform(config);
        const Workload w = specWorkload("gzip", config.core, 3.0);
        return platform.run(w, governor);
    }
};

TEST_F(FaultyPlatformTest, PlainPmUnaffectedBySensorFaults)
{
    // PM never reads the sensor; glitches must not change its control.
    PerformanceMaximizer clean_pm(
        models().powerEstimator(PStateTable::pentiumM()),
        PmConfig{.powerLimitW = 14.5});
    const RunResult clean = runWithGlitches(clean_pm, 0.0);
    PerformanceMaximizer faulty_pm(
        models().powerEstimator(PStateTable::pentiumM()),
        PmConfig{.powerLimitW = 14.5});
    const RunResult faulty = runWithGlitches(faulty_pm, 0.05);
    EXPECT_DOUBLE_EQ(clean.seconds, faulty.seconds);
    EXPECT_EQ(clean.dvfs.transitions, faulty.dvfs.transitions);
}

TEST_F(FaultyPlatformTest, FeedbackPmDegradesGracefully)
{
    // PM-F consumes the sensor; its clamped EWMA must keep occasional
    // glitches from wrecking performance (bounded slowdown vs clean).
    PmFeedback clean_pm(
        models().powerEstimator(PStateTable::pentiumM()),
        PmConfig{.powerLimitW = 14.5});
    const RunResult clean = runWithGlitches(clean_pm, 0.0);
    PmFeedback faulty_pm(
        models().powerEstimator(PStateTable::pentiumM()),
        PmConfig{.powerLimitW = 14.5});
    const RunResult faulty = runWithGlitches(faulty_pm, 0.02);
    EXPECT_LT(faulty.seconds, clean.seconds * 1.15);
    EXPECT_TRUE(faulty.finished);
}

TEST_F(FaultyPlatformTest, AdaptivePmSurvivesGlitches)
{
    // PM-A's RLS sees corrupted samples; forgetting plus the residual
    // clamp keep the run sane.
    PmAdaptive clean_pm(
        models().powerEstimator(PStateTable::pentiumM()),
        PmConfig{.powerLimitW = 14.5});
    const RunResult clean = runWithGlitches(clean_pm, 0.0);
    PmAdaptive faulty_pm(
        models().powerEstimator(PStateTable::pentiumM()),
        PmConfig{.powerLimitW = 14.5});
    const RunResult faulty = runWithGlitches(faulty_pm, 0.02);
    EXPECT_TRUE(faulty.finished);
    EXPECT_LT(faulty.seconds, clean.seconds * 1.25);
}

} // namespace
} // namespace aapm
