/**
 * @file
 * Tests for the assembled platform: the 10 ms monitor loop, energy
 * accounting, DVFS transitions during runs, trace recording, runtime
 * command delivery, and determinism.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mgmt/performance_maximizer.hh"
#include "mgmt/power_save.hh"
#include "mgmt/static_clock.hh"
#include "platform/experiment.hh"
#include "platform/platform.hh"
#include "workload/spec_suite.hh"

namespace aapm
{
namespace
{

Workload
corePhaseWorkload(double seconds)
{
    // ~2e9 instr/s at 2 GHz with baseCpi 1.0.
    Phase p;
    p.name = "core";
    p.instructions =
        static_cast<uint64_t>(seconds * 2e9);
    p.baseCpi = 1.0;
    p.decodeRatio = 1.3;
    p.memPerInstr = 0.3;
    Workload w("core-w");
    w.add(p);
    return w;
}

TEST(PlatformTest, FixedFrequencyRunCompletes)
{
    Platform platform;
    const RunResult r = platform.runAtPState(corePhaseWorkload(1.0), 7);
    EXPECT_TRUE(r.finished);
    EXPECT_NEAR(r.seconds, 1.0, 0.02);
    EXPECT_EQ(r.instructions, corePhaseWorkload(1.0).totalInstructions());
    EXPECT_EQ(r.governorName, "static");
}

TEST(PlatformTest, LowerFrequencyTakesLonger)
{
    Platform platform;
    const Workload w = corePhaseWorkload(0.5);
    const RunResult fast = platform.runAtPState(w, 7);
    const RunResult slow = platform.runAtPState(w, 0);
    EXPECT_NEAR(slow.seconds / fast.seconds, 2000.0 / 600.0, 0.02);
}

TEST(PlatformTest, LowerFrequencyUsesLessEnergyOnCoreBoundWork)
{
    Platform platform;
    const Workload w = corePhaseWorkload(0.5);
    const RunResult fast = platform.runAtPState(w, 7);
    const RunResult slow = platform.runAtPState(w, 0);
    // Despite running 3.3x longer, the V^2 drop wins by a wide margin.
    EXPECT_LT(slow.trueEnergyJ, fast.trueEnergyJ);
}

TEST(PlatformTest, EnergyEqualsAvgPowerTimesTime)
{
    Platform platform;
    const RunResult r = platform.runAtPState(corePhaseWorkload(0.5), 5);
    EXPECT_NEAR(r.trueEnergyJ, r.avgTruePowerW * r.seconds, 1e-6);
}

TEST(PlatformTest, MeasuredEnergyTracksTrueEnergy)
{
    Platform platform;
    const RunResult r = platform.runAtPState(corePhaseWorkload(1.0), 7);
    EXPECT_NEAR(r.measuredEnergyJ, r.trueEnergyJ,
                0.02 * r.trueEnergyJ);
}

TEST(PlatformTest, TraceHasOneSamplePerInterval)
{
    Platform platform;
    const RunResult r = platform.runAtPState(corePhaseWorkload(0.5), 7);
    // 0.5 s at 10 ms -> ~50 samples.
    EXPECT_NEAR(static_cast<double>(r.trace.samples().size()), 50.0,
                2.0);
    for (const auto &s : r.trace.samples()) {
        EXPECT_GT(s.measuredW, 0.0);
        EXPECT_DOUBLE_EQ(s.freqMhz, 2000.0);
    }
}

TEST(PlatformTest, TraceDisabledWhenRequested)
{
    Platform platform;
    RunOptions opts;
    opts.recordTrace = false;
    const RunResult r =
        platform.runAtPState(corePhaseWorkload(0.2), 7, opts);
    EXPECT_TRUE(r.trace.samples().empty());
    EXPECT_GT(r.trueEnergyJ, 0.0);   // accounting still works
}

TEST(PlatformTest, RunsAreDeterministic)
{
    Platform a, b;
    const Workload w = corePhaseWorkload(0.3);
    const RunResult ra = a.runAtPState(w, 6);
    const RunResult rb = b.runAtPState(w, 6);
    EXPECT_DOUBLE_EQ(ra.seconds, rb.seconds);
    EXPECT_DOUBLE_EQ(ra.trueEnergyJ, rb.trueEnergyJ);
    EXPECT_DOUBLE_EQ(ra.measuredEnergyJ, rb.measuredEnergyJ);
}

TEST(PlatformTest, MaxTimeCutsRunShort)
{
    Platform platform;
    RunOptions opts;
    opts.maxTime = 100 * TicksPerMs;
    const RunResult r =
        platform.runAtPState(corePhaseWorkload(10.0), 7, opts);
    EXPECT_FALSE(r.finished);
    EXPECT_LT(r.seconds, 0.2);
}

TEST(PlatformTest, ThermalFeedbackWarmsTheDie)
{
    PlatformConfig config;
    config.thermalFeedback = true;
    Platform platform(config);
    const RunResult r = platform.runAtPState(corePhaseWorkload(2.0), 7);
    EXPECT_GT(r.finalTempC, config.thermal.ambientC + 2.0);
}

TEST(PlatformTest, ThermalFeedbackRaisesLeakageSlightly)
{
    PlatformConfig with;
    with.thermalFeedback = true;
    PlatformConfig without = with;
    without.thermalFeedback = false;
    const Workload w = corePhaseWorkload(2.0);
    const RunResult hot = Platform(with).runAtPState(w, 7);
    const RunResult cold = Platform(without).runAtPState(w, 7);
    EXPECT_NE(hot.trueEnergyJ, cold.trueEnergyJ);
    EXPECT_NEAR(hot.trueEnergyJ, cold.trueEnergyJ,
                0.05 * cold.trueEnergyJ);
}

TEST(PlatformTest, GovernorChangesFrequencyMidRun)
{
    // PS on ammp must actually modulate the p-state (Fig 8).
    PlatformConfig config;
    Platform platform(config);
    PowerSave ps(config.pstates, PerfEstimator(1.21, 0.81), {0.8});
    const Workload ammp = specWorkload("ammp", config.core, 3.0);
    const RunResult r = platform.run(ammp, ps);
    EXPECT_GT(r.dvfs.transitions, 2u);
    // Residency spread across more than one state.
    int states_used = 0;
    for (Tick t : r.dvfs.residency) {
        if (t > 0)
            ++states_used;
    }
    EXPECT_GE(states_used, 2);
}

TEST(PlatformTest, DvfsTransitionsCostTime)
{
    PlatformConfig config;
    Platform platform(config);
    PowerSave ps(config.pstates, PerfEstimator(1.21, 0.81), {0.8});
    const Workload ammp = specWorkload("ammp", config.core, 3.0);
    const RunResult r = platform.run(ammp, ps);
    EXPECT_GT(r.dvfs.stallTicks, 0u);
    // Stall overhead is tiny relative to the run (10s of us per 10 ms).
    EXPECT_LT(ticksToSeconds(r.dvfs.stallTicks), 0.01 * r.seconds);
}

TEST(PlatformTest, ScheduledPowerLimitCommandApplies)
{
    PlatformConfig config;
    Platform platform(config);
    const TrainedModels models = trainModels(config);
    PerformanceMaximizer pm(models.powerEstimator(config.pstates),
                            {.powerLimitW = 30.0});
    RunOptions opts;
    // Tighten the limit hard at t = 1 s.
    opts.commands.push_back(
        {TicksPerSec, ScheduledCommand::Kind::SetPowerLimit, 9.0});
    const Workload w = corePhaseWorkload(2.0);
    const RunResult r = platform.run(w, pm, opts);
    // Before 1 s the platform runs at 2000 MHz; after, well below.
    double before_hz = 0.0, after_hz = 0.0;
    int before_n = 0, after_n = 0;
    for (const auto &s : r.trace.samples()) {
        if (s.when < TicksPerSec) {
            before_hz += s.freqMhz;
            ++before_n;
        } else if (s.when > TicksPerSec + 200 * TicksPerMs) {
            after_hz += s.freqMhz;
            ++after_n;
        }
    }
    ASSERT_GT(before_n, 0);
    ASSERT_GT(after_n, 0);
    EXPECT_GT(before_hz / before_n, 1900.0);
    EXPECT_LT(after_hz / after_n, 1500.0);
}

TEST(PlatformTest, SteadyPowerMonotoneInPState)
{
    Platform platform;
    Phase p;
    p.instructions = 1000;
    p.baseCpi = 0.8;
    p.decodeRatio = 1.3;
    p.memPerInstr = 0.3;
    double prev = 0.0;
    for (size_t i = 0; i < platform.pstates().size(); ++i) {
        const double w = platform.steadyPower(p, i);
        EXPECT_GT(w, prev);
        prev = w;
    }
}

TEST(PlatformTest, InvalidConfigRejected)
{
    PlatformConfig config;
    config.initialPState = 12;
    EXPECT_THROW(Platform{config}, std::runtime_error);
    PlatformConfig config2;
    config2.sampleInterval = 0;
    EXPECT_THROW(Platform{config2}, std::runtime_error);
}

TEST(ExperimentTest, SuiteHelpersAggregate)
{
    PlatformConfig config;
    Platform platform(config);
    std::vector<Workload> mini;
    mini.push_back(specWorkload("sixtrack", config.core, 1.0));
    mini.push_back(specWorkload("swim", config.core, 1.0));
    const SuiteResult r = runSuiteAtPState(platform, mini, 7);
    ASSERT_EQ(r.runs.size(), 2u);
    EXPECT_NEAR(r.totalSeconds(),
                r.runs[0].seconds + r.runs[1].seconds, 1e-12);
    EXPECT_GT(r.totalTrueEnergyJ(), 0.0);
    EXPECT_EQ(r.byName("swim").workloadName, "swim");
    EXPECT_THROW(r.byName("mcf"), std::runtime_error);
}

TEST(ExperimentTest, RunSuiteWithGovernorFactory)
{
    PlatformConfig config;
    Platform platform(config);
    const TrainedModels models = trainModels(config);
    std::vector<Workload> mini;
    mini.push_back(specWorkload("gzip", config.core, 1.0));
    const SuiteResult r = runSuite(platform, mini, [&] {
        return std::make_unique<PerformanceMaximizer>(
            models.powerEstimator(config.pstates),
            PmConfig{.powerLimitW = 14.5});
    });
    ASSERT_EQ(r.runs.size(), 1u);
    EXPECT_EQ(r.runs[0].governorName, "PM");
    EXPECT_TRUE(r.runs[0].finished);
}

} // namespace
} // namespace aapm
