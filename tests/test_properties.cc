/**
 * @file
 * Golden-model and fuzz property tests: randomized inputs checked
 * against independent reference implementations or conservation laws.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <vector>

#include "common/random.hh"
#include "cpu/core_model.hh"
#include "mem/cache.hh"
#include "mgmt/performance_maximizer.hh"
#include "mgmt/power_save.hh"
#include "platform/platform.hh"
#include "sim/event_queue.hh"
#include "workload/synthetic.hh"

namespace aapm
{
namespace
{

// ---------------------------------------------------------------- //
//            Cache vs. a straightforward reference model            //
// ---------------------------------------------------------------- //

/** Obviously-correct set-associative LRU cache (lists of line addrs). */
class ReferenceCache
{
  public:
    ReferenceCache(uint64_t sets, uint32_t ways, uint32_t line)
        : sets_(sets), ways_(ways), line_(line), lru_(sets)
    {
    }

    bool
    access(uint64_t addr)
    {
        const uint64_t la = addr / line_;
        auto &set = lru_[la % sets_];
        auto it = std::find(set.begin(), set.end(), la);
        if (it != set.end()) {
            set.erase(it);
            set.push_front(la);
            return true;
        }
        set.push_front(la);
        if (set.size() > ways_)
            set.pop_back();
        return false;
    }

  private:
    uint64_t sets_;
    uint32_t ways_;
    uint32_t line_;
    std::vector<std::list<uint64_t>> lru_;
};

class CacheGoldenTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CacheGoldenTest, MatchesReferenceOnRandomStream)
{
    const uint64_t seed = GetParam();
    CacheConfig cfg{"dut", 8 * 1024, 64, 4, 1};
    Cache dut(cfg);
    ReferenceCache ref(cfg.numSets(), cfg.ways, cfg.lineBytes);
    Rng rng(seed);
    for (int i = 0; i < 50000; ++i) {
        // Mixture of localized and scattered accesses.
        const uint64_t addr = rng.chance(0.7)
            ? rng.below(16 * 1024)
            : rng.below(1 << 24);
        const bool dut_hit = dut.access(addr, rng.chance(0.3)).hit;
        const bool ref_hit = ref.access(addr);
        ASSERT_EQ(dut_hit, ref_hit) << "access " << i << " addr "
                                    << addr << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheGoldenTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------- //
//            Event queue vs. a sorted-vector reference              //
// ---------------------------------------------------------------- //

TEST(EventQueueFuzz, MatchesReferenceOrdering)
{
    // Random schedule/cancel churn; execution order must match a
    // stable sort by (tick, sequence).
    for (uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
        Rng rng(seed);
        EventQueue eq;
        std::vector<int> fired;
        std::vector<std::unique_ptr<EventFunctionWrapper>> events;
        struct RefEntry
        {
            Tick when;
            uint64_t seq;
            int id;
        };
        std::vector<RefEntry> ref;
        uint64_t seq = 0;
        for (int id = 0; id < 300; ++id) {
            const Tick when = 1 + rng.below(1000);
            events.push_back(std::make_unique<EventFunctionWrapper>(
                "ev", [&fired, id] { fired.push_back(id); }));
            eq.schedule(events.back().get(), when);
            ref.push_back({when, seq++, id});
            // Randomly cancel an earlier still-scheduled event.
            if (rng.chance(0.25) && !ref.empty()) {
                const size_t victim = rng.below(ref.size());
                Event *ev = events[ref[victim].id].get();
                if (ev->scheduled()) {
                    eq.deschedule(ev);
                    ref.erase(ref.begin() +
                              static_cast<long>(victim));
                }
            }
        }
        eq.runUntil(2000);
        std::stable_sort(ref.begin(), ref.end(),
                         [](const RefEntry &a, const RefEntry &b) {
                             if (a.when != b.when)
                                 return a.when < b.when;
                             return a.seq < b.seq;
                         });
        ASSERT_EQ(fired.size(), ref.size()) << "seed " << seed;
        for (size_t i = 0; i < ref.size(); ++i)
            ASSERT_EQ(fired[i], ref[i].id) << "seed " << seed;
    }
}

// ---------------------------------------------------------------- //
//                  Core-model conservation laws                     //
// ---------------------------------------------------------------- //

TEST(CoreModelFuzz, ChoppedAdvanceMatchesWholeAdvance)
{
    // Advancing in many random-sized quanta must retire the same
    // instructions in (nearly) the same total time as one big call.
    CoreParams params;
    CoreModel core(params);
    Workload w("w", 3);
    Phase a;
    a.name = "a";
    a.instructions = 40'000'000;
    a.baseCpi = 0.7;
    a.decodeRatio = 1.3;
    a.memPerInstr = 0.4;
    a.l1MissPerInstr = 0.03;
    a.l2MissPerInstr = 0.01;
    Phase b = a;
    b.name = "b";
    b.baseCpi = 1.1;
    b.l2MissPerInstr = 0.004;
    w.add(a).add(b);

    std::vector<ExecChunk> chunks;
    WorkloadCursor whole(w);
    const Tick t_whole =
        core.advance(whole, 1.4, 3600 * TicksPerSec, chunks);
    ASSERT_TRUE(whole.done());

    for (uint64_t seed : {7ull, 17ull, 27ull}) {
        Rng rng(seed);
        WorkloadCursor chopped(w);
        Tick t_chopped = 0;
        chunks.clear();
        while (!chopped.done()) {
            const Tick quantum =
                TicksPerUs + rng.below(20 * TicksPerMs);
            t_chopped += core.advance(chopped, 1.4, quantum, chunks);
        }
        EXPECT_EQ(chopped.retired(), w.totalInstructions());
        // Sub-instruction slivers at quantum boundaries bound the
        // drift: one instruction time per quantum at most.
        const double rel =
            std::abs(static_cast<double>(t_chopped) -
                     static_cast<double>(t_whole)) /
            static_cast<double>(t_whole);
        EXPECT_LT(rel, 1e-4) << "seed " << seed;
    }
}

TEST(CoreModelFuzz, EventTotalsConservedAcrossChopping)
{
    CoreParams params;
    CoreModel core(params);
    Phase p;
    p.instructions = 30'000'000;
    p.baseCpi = 0.9;
    p.decodeRatio = 1.4;
    p.memPerInstr = 0.4;
    p.l1MissPerInstr = 0.05;
    p.l2MissPerInstr = 0.02;
    Workload w("w");
    w.add(p);

    auto run = [&](Tick quantum) {
        WorkloadCursor cursor(w);
        std::vector<ExecChunk> chunks;
        while (!cursor.done())
            core.advance(cursor, 2.0, quantum, chunks);
        EventTotals total;
        for (const auto &c : chunks)
            total += c.events;
        return total;
    };
    const EventTotals big = run(3600 * TicksPerSec);
    const EventTotals small = run(3 * TicksPerMs);
    EXPECT_NEAR(big.cycles, small.cycles, big.cycles * 1e-9);
    EXPECT_NEAR(big.instructionsDecoded, small.instructionsDecoded,
                1e-3);
    EXPECT_NEAR(big.busMemoryRequests, small.busMemoryRequests, 1e-3);
}

// ---------------------------------------------------------------- //
//                Platform invariants under sampling                 //
// ---------------------------------------------------------------- //

TEST(PlatformProperty, FixedFreqResultsInvariantToSampleInterval)
{
    Phase p;
    p.baseCpi = 0.9;
    p.decodeRatio = 1.3;
    p.memPerInstr = 0.4;
    p.l1MissPerInstr = 0.04;
    p.l2MissPerInstr = 0.015;

    PlatformConfig c10;
    const Workload w = steadyWorkload("steady", p, 1.0, c10.core);
    PlatformConfig c5 = c10;
    c5.sampleInterval = 5 * TicksPerMs;

    const RunResult r10 = Platform(c10).runAtPState(w, 6);
    const RunResult r5 = Platform(c5).runAtPState(w, 6);
    EXPECT_NEAR(r10.seconds, r5.seconds, 1e-6);
    EXPECT_NEAR(r10.trueEnergyJ, r5.trueEnergyJ,
                0.001 * r10.trueEnergyJ);
}

TEST(PlatformProperty, TraceEnergyMatchesAccountedEnergy)
{
    PlatformConfig config;
    Platform platform(config);
    Phase p;
    p.baseCpi = 0.8;
    p.decodeRatio = 1.2;
    p.memPerInstr = 0.3;
    const Workload w = steadyWorkload("steady", p, 1.0, config.core);
    const RunResult r = platform.runAtPState(w, 7);
    // Summing the trace's true samples over their (uniform) interval
    // must reproduce the integrated energy.
    const double from_trace =
        r.trace.trueEnergyJ(ticksToSeconds(config.sampleInterval));
    EXPECT_NEAR(from_trace, r.trueEnergyJ, 0.02 * r.trueEnergyJ);
}

// ---------------------------------------------------------------- //
//                Governor decision-level invariants                 //
// ---------------------------------------------------------------- //

class PmSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(PmSweep, ChosenStatePredictedSafeWheneverFeasible)
{
    const double limit = std::get<0>(GetParam());
    const double dpc = std::get<1>(GetParam());
    const PowerEstimator est = PowerEstimator::paperPentiumM();
    PerformanceMaximizer pm(est, {.powerLimitW = limit});
    MonitorSample s;
    s.dpc = dpc;
    s.pstate = 7;
    const size_t next = pm.decide(s, 7);
    const double predicted = est.estimateAt(7, dpc, next) + 0.5;
    const bool any_feasible = [&] {
        for (size_t i = 0; i < 8; ++i) {
            if (est.estimateAt(7, dpc, i) + 0.5 <= limit)
                return true;
        }
        return false;
    }();
    if (any_feasible) {
        EXPECT_LE(predicted, limit) << "limit " << limit << " dpc "
                                    << dpc;
        // And no faster state would also have been safe.
        for (size_t i = next + 1; i < 8; ++i)
            EXPECT_GT(est.estimateAt(7, dpc, i) + 0.5, limit);
    } else {
        EXPECT_EQ(next, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PmSweep,
    ::testing::Combine(::testing::Values(10.5, 12.5, 14.5, 17.5, 25.0),
                       ::testing::Values(0.1, 0.5, 1.0, 1.5, 2.0,
                                         3.0)));

class PsSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(PsSweep, ChosenStateIsLowestClearingTheFloor)
{
    const double floor = std::get<0>(GetParam());
    const double dcu_over_ipc = std::get<1>(GetParam());
    const PStateTable table = PStateTable::pentiumM();
    const PerfEstimator est(1.21, 0.81);
    PowerSave ps(table, est, {floor});
    MonitorSample s;
    s.ipc = 0.8;
    s.dcuPerCycle = dcu_over_ipc * s.ipc;
    s.pstate = 7;
    const size_t next = ps.decide(s, 7);
    const double peak = est.projectPerf(s.ipc, s.dcuPerCycle, 2000.0,
                                        2000.0);
    const double chosen = est.projectPerf(s.ipc, s.dcuPerCycle, 2000.0,
                                          table[next].freqMhz);
    EXPECT_GE(chosen, floor * peak * (1.0 - 1e-9));
    if (next > 0) {
        const double below = est.projectPerf(
            s.ipc, s.dcuPerCycle, 2000.0, table[next - 1].freqMhz);
        EXPECT_LT(below, floor * peak * (1.0 - 1e-9));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PsSweep,
    ::testing::Combine(::testing::Values(0.2, 0.4, 0.6, 0.8, 0.95),
                       ::testing::Values(0.0, 0.5, 1.0, 1.3, 2.0,
                                         5.0)));

} // namespace
} // namespace aapm
