/**
 * @file
 * Cluster power-budget subsystem tests: allocator invariants (budget
 * conservation, floor non-starvation), the 1-core bit-identity
 * contract with bare Platform::run, determinism across thread-pool
 * widths, budget re-absorption around a stuck DVFS actuator, and the
 * headline comparison — demand-proportional allocation beating the
 * uniform baseline on a mixed core/memory-bound manifest at equal
 * budget.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "cluster/allocator.hh"
#include "cluster/budget_tree.hh"
#include "cluster/cluster.hh"
#include "mgmt/performance_maximizer.hh"
#include "obs/trace.hh"
#include "platform/experiment.hh"
#include "workload/spec_suite.hh"

namespace aapm
{
namespace
{

class ClusterTest : public ::testing::Test
{
  protected:
    static const PlatformConfig &
    config()
    {
        static const PlatformConfig c;
        return c;
    }

    static const TrainedModels &
    models()
    {
        static const TrainedModels m = trainModels(config());
        return m;
    }

    static const PowerEstimator &
    powerModel()
    {
        static const PowerEstimator p =
            models().powerEstimator(config().pstates);
        return p;
    }

    static const PerfEstimator &
    perfModel()
    {
        static const PerfEstimator p = models().perfEstimator();
        return p;
    }

    /** PM factory; the cluster overwrites the limit before interval 0,
     *  so the construction-time value is a placeholder. */
    static GovernorFactory
    pmFactory(double limit)
    {
        return [limit] {
            return std::make_unique<PerformanceMaximizer>(
                powerModel(), PmConfig{.powerLimitW = limit});
        };
    }

    static ClusterCoreConfig
    makeCore(const Workload *w, double placeholderLimit = 100.0)
    {
        ClusterCoreConfig core;
        core.platform = config();
        core.workload = w;
        core.governor = pmFactory(placeholderLimit);
        core.powerModel = &powerModel();
        core.perfModel = &perfModel();
        return core;
    }
};

TEST_F(ClusterTest, UniformOneCoreBitIdenticalToBarePlatformRun)
{
    const Workload w = specWorkload("ammp", config().core, 3.0);
    const double budget = 16.0;

    Platform bare(config());
    PerformanceMaximizer pm(powerModel(),
                            PmConfig{.powerLimitW = budget});
    const RunResult base = bare.run(w, pm);

    // Placeholder limit differs from the budget on purpose: the
    // cluster's pre-run delivery must be what decides the run.
    ClusterConfig cc;
    cc.cores.push_back(makeCore(&w, 5.0));
    cc.budgetW = budget;
    ClusterPlatform cluster(cc);
    UniformAllocator uniform;
    const ClusterResult serial = cluster.run(uniform, nullptr);

    ASSERT_EQ(serial.cores.size(), 1u);
    const RunResult &r = serial.cores[0];
    EXPECT_EQ(base.instructions, r.instructions);
    EXPECT_DOUBLE_EQ(base.seconds, r.seconds);
    EXPECT_DOUBLE_EQ(base.trueEnergyJ, r.trueEnergyJ);
    EXPECT_DOUBLE_EQ(base.measuredEnergyJ, r.measuredEnergyJ);
    EXPECT_DOUBLE_EQ(base.finalTempC, r.finalTempC);
    EXPECT_EQ(base.dvfs.transitions, r.dvfs.transitions);
    EXPECT_EQ(base.dvfs.stallTicks, r.dvfs.stallTicks);
    EXPECT_TRUE(r.finished);

    // And identical again when the intervals fan out on a pool.
    ThreadPool pool(4);
    const ClusterResult pooled = cluster.run(uniform, &pool);
    EXPECT_EQ(base.instructions, pooled.cores[0].instructions);
    EXPECT_DOUBLE_EQ(base.trueEnergyJ, pooled.cores[0].trueEnergyJ);
}

TEST_F(ClusterTest, AllocationsSumWithinBudgetEveryInterval)
{
    const Workload a = specWorkload("ammp", config().core, 1.5);
    const Workload b = specWorkload("mcf", config().core, 1.5);
    const Workload c = specWorkload("crafty", config().core, 1.5);
    const Workload d = specWorkload("swim", config().core, 1.5);

    for (const std::string &name : allocatorNames()) {
        ClusterConfig cc;
        cc.cores = {makeCore(&a), makeCore(&b), makeCore(&c),
                    makeCore(&d)};
        cc.budgetW = 40.0;
        // Budget drop mid-run: the allocator must track it.
        cc.budgetCommands.push_back(
            {secondsToTicks(0.8), ScheduledCommand::Kind::SetPowerLimit,
             30.0});
        cc.recordAllocations = true;
        ClusterPlatform cluster(cc);
        auto alloc = makeAllocator(name);
        ASSERT_NE(alloc, nullptr) << name;
        const ClusterResult res = cluster.run(*alloc);

        ASSERT_FALSE(res.allocations.empty()) << name;
        for (const ClusterIntervalStat &stat : res.allocations) {
            double sum = 0.0;
            for (double w : stat.allocationW)
                sum += w;
            EXPECT_LE(sum, stat.budgetW * (1.0 + 1e-9))
                << name << " at tick " << stat.when;
            if (stat.when > secondsToTicks(0.8))
                EXPECT_DOUBLE_EQ(stat.budgetW, 30.0) << name;
        }
    }
}

TEST_F(ClusterTest, ModelDrivenPoliciesKeepEveryCoreAboveItsFloor)
{
    const Workload a = specWorkload("ammp", config().core, 1.5);
    const Workload b = specWorkload("swim", config().core, 1.5);
    const Workload c = specWorkload("crafty", config().core, 1.5);
    const Workload d = specWorkload("gzip", config().core, 1.5);

    // The idle-at-slowest prediction is a hard lower bound on any
    // core's floor (the floor adds the measured DPC and a guardband).
    const double floorLowerBound = powerModel().estimate(0, 0.0);

    for (const std::string &name : {std::string("demand"),
                                    std::string("greedy")}) {
        ClusterConfig cc;
        cc.cores = {makeCore(&a), makeCore(&b), makeCore(&c),
                    makeCore(&d)};
        cc.budgetW = 60.0;   // comfortably above the sum of floors
        cc.recordAllocations = true;
        ClusterPlatform cluster(cc);
        auto alloc = makeAllocator(name);
        const ClusterResult res = cluster.run(*alloc);

        ASSERT_GT(res.allocations.size(), 1u);
        // Skip the pre-run round (uniform split by construction).
        for (size_t s = 1; s < res.allocations.size(); ++s) {
            for (double w : res.allocations[s].allocationW) {
                if (w == 0.0)
                    continue;   // finished core
                EXPECT_GE(w, floorLowerBound) << name;
            }
        }
    }
}

TEST_F(ClusterTest, DeterministicAcrossThreadPoolWidths)
{
    const Workload a = specWorkload("ammp", config().core, 1.5);
    const Workload b = specWorkload("mcf", config().core, 1.5);
    const Workload c = specWorkload("crafty", config().core, 1.5);
    const Workload d = specWorkload("swim", config().core, 1.5);

    ClusterConfig cc;
    cc.cores = {makeCore(&a), makeCore(&b), makeCore(&c), makeCore(&d)};
    cc.budgetW = 40.0;
    ClusterPlatform cluster(cc);
    DemandProportionalAllocator demand;

    const ClusterResult serial = cluster.run(demand, nullptr);
    ThreadPool one(1);
    const ClusterResult narrow = cluster.run(demand, &one);
    ThreadPool seven(7);
    const ClusterResult wide = cluster.run(demand, &seven);

    for (const ClusterResult *other : {&narrow, &wide}) {
        ASSERT_EQ(serial.cores.size(), other->cores.size());
        for (size_t i = 0; i < serial.cores.size(); ++i) {
            EXPECT_EQ(serial.cores[i].instructions,
                      other->cores[i].instructions);
            EXPECT_DOUBLE_EQ(serial.cores[i].trueEnergyJ,
                             other->cores[i].trueEnergyJ);
            EXPECT_DOUBLE_EQ(serial.cores[i].seconds,
                             other->cores[i].seconds);
        }
        EXPECT_EQ(serial.instructions, other->instructions);
        EXPECT_DOUBLE_EQ(serial.fractionOverBudgetTrue,
                         other->fractionOverBudgetTrue);
        EXPECT_EQ(serial.intervals, other->intervals);
    }
}

TEST_F(ClusterTest, StuckCoreBudgetIsReabsorbedByHealthyCores)
{
    const Workload w = specWorkload("ammp", config().core, 2.5);

    ClusterConfig cc;
    for (int i = 0; i < 4; ++i)
        cc.cores.push_back(makeCore(&w));
    // Core 0 boots slow and its actuator is stuck for the whole run:
    // the governor's raise attempts are denied, so its demand must be
    // priced at the stuck state and the slack must flow to the rest.
    cc.cores[0].platform.initialPState = 2;
    cc.cores[0].options.faultPlan.scheduled.push_back(
        {0, ScheduledFault::Kind::DvfsStuck, 100000});
    cc.budgetW = 40.0;
    cc.recordAllocations = true;
    ClusterPlatform cluster(cc);
    DemandProportionalAllocator demand;
    const ClusterResult res = cluster.run(demand);

    // The fault actually engaged.
    EXPECT_GT(res.cores[0].recovery.dvfsStuckDenied, 0u);
    // Core 0 never escaped its boot p-state.
    EXPECT_EQ(res.cores[0].dvfs.transitions, 0u);

    // Average allocation over the settled part of the run: the stuck
    // core gets less than the uniform share, the healthy cores more.
    const double share = cc.budgetW / 4.0;
    double stuck = 0.0;
    double healthy = 0.0;
    size_t rounds = 0;
    for (const ClusterIntervalStat &stat : res.allocations) {
        if (stat.when < secondsToTicks(1.0))
            continue;
        // Only rounds with all four cores running: once a core
        // finishes, its share legitimately flows to the survivors
        // (including the stuck one) and would skew the averages.
        bool allRunning = true;
        for (double w : stat.allocationW)
            allRunning = allRunning && w > 0.0;
        if (!allRunning)
            continue;
        ++rounds;
        stuck += stat.allocationW[0];
        healthy += (stat.allocationW[1] + stat.allocationW[2] +
                    stat.allocationW[3]) / 3.0;
    }
    ASSERT_GT(rounds, 10u);
    stuck /= static_cast<double>(rounds);
    healthy /= static_cast<double>(rounds);
    EXPECT_LT(stuck, share - 0.2);
    EXPECT_GT(healthy, share + 0.05);
    EXPECT_GT(healthy, stuck + 0.5);
}

TEST_F(ClusterTest, PerCoreTracersSeeClusterIdentityAndEqualRecords)
{
    const Workload w = specWorkload("gzip", config().core, 3.0);

    VectorTraceSink sink0;
    VectorTraceSink sink1;
    IntervalTracer tracer0(sink0);
    IntervalTracer tracer1(sink1);

    ClusterConfig cc;
    cc.cores = {makeCore(&w), makeCore(&w)};
    cc.cores[0].options.tracer = &tracer0;
    cc.cores[1].options.tracer = &tracer1;
    // Equal time bound: both cores trace the same interval count.
    cc.cores[0].options.maxTime = secondsToTicks(1.0);
    cc.cores[1].options.maxTime = secondsToTicks(1.0);
    cc.budgetW = 30.0;
    ClusterPlatform cluster(cc);
    UniformAllocator uniform;
    const ClusterResult res = cluster.run(uniform);
    (void)res;

    EXPECT_EQ(sink0.meta().core, 0u);
    EXPECT_EQ(sink1.meta().core, 1u);
    EXPECT_EQ(sink0.meta().cores, 2u);
    EXPECT_EQ(sink1.meta().cores, 2u);
    ASSERT_FALSE(sink0.records().empty());
    EXPECT_EQ(sink0.records().size(), sink1.records().size());
}

/** Deterministic LCG so the randomized equivalence sweeps are
 *  reproducible across runs and hosts. */
struct Lcg
{
    uint64_t state;

    double
    uni()
    {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<double>(state >> 11) / 9007199254740992.0;
    }
};

/**
 * A synthetic demand vector covering every auction corner: inactive
 * cores, unmodeled cores (no power model — uniform-share sit-outs),
 * perf-less cores (frequency-fallback gains), pinned actuators, and —
 * when the count allows — exact duplicate cores so the
 * (utility desc, index asc) tie-break is actually exercised.
 */
std::vector<CoreDemand>
syntheticDemands(const PlatformConfig &config, const PowerEstimator &pw,
                 const PerfEstimator &pf, size_t n, uint64_t seed)
{
    Lcg rng{seed * 2654435761ULL + 1};
    const size_t k = config.pstates.size();
    std::vector<CoreDemand> cores(n);
    for (CoreDemand &d : cores) {
        d.pstates = &config.pstates;
        d.active = rng.uni() > 0.1;
        d.sampled = rng.uni() > 0.05;
        d.power = rng.uni() > 0.15 ? &pw : nullptr;
        d.perf = rng.uni() > 0.2 ? &pf : nullptr;
        d.sample.pstate = static_cast<size_t>(rng.uni() * double(k)) % k;
        d.pstate = static_cast<size_t>(rng.uni() * double(k)) % k;
        d.sample.dpc = 0.2 + 1.4 * rng.uni();
        d.sample.ipc = 0.3 + 1.0 * rng.uni();
        d.sample.dcuPerCycle = d.sample.ipc * (0.8 + 1.0 * rng.uni());
        d.sample.measuredPowerW = 5.0 + 10.0 * rng.uni();
        d.actuatorPinned = rng.uni() < 0.15;
    }
    if (n >= 4) {
        cores[1] = cores[0];   // exact tie: identical curves
        cores[n - 1] = cores[n / 2];
    }
    return cores;
}

TEST_F(ClusterTest, HeapWaterFillBitIdenticalToReferenceScan)
{
    // One persistent heap allocator across every case, so its
    // steady-state memo sees misses, updates, and (via the repeated
    // call) hits — all of which must reproduce the fresh reference
    // scan exactly, double for double.
    GreedyPerfAllocator heap;
    std::vector<double> got, ref, again;
    for (size_t n : {1u, 2u, 3u, 5u, 9u, 17u, 33u}) {
        for (uint64_t seed = 0; seed < 6; ++seed) {
            const std::vector<CoreDemand> cores = syntheticDemands(
                config(), powerModel(), perfModel(), n, seed);
            // Tight, constrained, generous and ample budgets: the last
            // takes the everything-affordable fast path, which must
            // also match the step-by-step reference.
            for (double perCore : {3.0, 8.0, 14.0, 300.0}) {
                const double budget = perCore * static_cast<double>(n);
                GreedyPerfAllocator reference(AllocatorConfig(), true);
                heap.allocate(budget, cores, got);
                reference.allocate(budget, cores, ref);
                ASSERT_EQ(got.size(), ref.size());
                for (size_t i = 0; i < got.size(); ++i)
                    EXPECT_EQ(got[i], ref[i])
                        << "n=" << n << " seed=" << seed
                        << " budget=" << budget << " core=" << i;
                // Identical input again: the memo answers, and must
                // answer with the same bits.
                heap.allocate(budget, cores, again);
                ASSERT_EQ(again.size(), got.size());
                for (size_t i = 0; i < got.size(); ++i)
                    EXPECT_EQ(got[i], again[i]) << "memo core " << i;
            }
        }
    }
}

TEST_F(ClusterTest, WaterFillConservesTightBudgets)
{
    GreedyPerfAllocator heap;
    std::vector<double> limits;
    for (uint64_t seed = 20; seed < 26; ++seed) {
        const std::vector<CoreDemand> cores = syntheticDemands(
            config(), powerModel(), perfModel(), 16, seed);
        // Budgets below the sum of floors force the proportional
        // shrink; slightly above exercise partial auctions.
        for (double budget : {1.0, 20.0, 60.0, 120.0}) {
            heap.allocate(budget, cores, limits);
            double sum = 0.0;
            for (size_t i = 0; i < cores.size(); ++i)
                if (cores[i].active)
                    sum += limits[i];
            EXPECT_LE(sum, budget * (1.0 + 1e-9))
                << "seed=" << seed << " budget=" << budget;
            for (size_t i = 0; i < cores.size(); ++i)
                if (!cores[i].active)
                    EXPECT_EQ(limits[i], 0.0);
        }
    }
}

TEST_F(ClusterTest, SingleActiveCoreTakesWholeBudgetWithoutModels)
{
    // 1-active-core passthrough: nothing to arbitrate, so the
    // model-driven policies grant the full budget without touching
    // the projection math.
    std::vector<CoreDemand> cores = syntheticDemands(
        config(), powerModel(), perfModel(), 6, 42);
    for (size_t i = 0; i < cores.size(); ++i)
        cores[i].active = i == 3;
    const double budget = 17.5;
    for (const char *name : {"demand", "greedy", "greedy-ref"}) {
        auto alloc = makeAllocator(name);
        ASSERT_NE(alloc, nullptr);
        std::vector<double> limits;
        alloc->allocate(budget, cores, limits);
        ASSERT_EQ(limits.size(), cores.size());
        for (size_t i = 0; i < limits.size(); ++i)
            EXPECT_EQ(limits[i], i == 3 ? budget : 0.0) << name;
    }
}

TEST_F(ClusterTest, SingleLevelTreeMatchesFlatPolicy)
{
    const std::vector<CoreDemand> cores = syntheticDemands(
        config(), powerModel(), perfModel(), 12, 7);
    const double budget = 90.0;
    for (const std::string &policy : {std::string("uniform"),
                                      std::string("demand"),
                                      std::string("greedy")}) {
        auto flat = makeAllocator(policy);
        auto tree = makeBudgetTreeAllocator("12:" + policy);
        ASSERT_NE(flat, nullptr);
        std::vector<double> flatL, treeL;
        flat->allocate(budget, cores, flatL);
        tree->allocate(budget, cores, treeL);
        ASSERT_EQ(flatL.size(), treeL.size());
        for (size_t i = 0; i < flatL.size(); ++i)
            EXPECT_DOUBLE_EQ(flatL[i], treeL[i]) << policy << " " << i;
    }
}

TEST_F(ClusterTest, TreeUniformRootIsolatesRacks)
{
    // Two racks under a uniform root: however lopsided the demand,
    // neither rack's total may exceed its PDU share of the budget.
    std::vector<CoreDemand> cores = syntheticDemands(
        config(), powerModel(), perfModel(), 8, 3);
    for (size_t i = 0; i < cores.size(); ++i) {
        cores[i].active = true;
        cores[i].sampled = true;
        cores[i].power = &powerModel();
        cores[i].perf = &perfModel();
        cores[i].actuatorPinned = false;
        // Rack 0 hot (high demand), rack 1 nearly idle.
        cores[i].sample.dpc = i < 4 ? 1.5 : 0.05;
    }
    const double budget = 60.0;
    auto tree = makeBudgetTreeAllocator("2x4:uniform,greedy");
    std::vector<double> limits;
    tree->allocate(budget, cores, limits);
    double rack0 = 0.0, rack1 = 0.0;
    for (size_t i = 0; i < 4; ++i)
        rack0 += limits[i];
    for (size_t i = 4; i < 8; ++i)
        rack1 += limits[i];
    EXPECT_LE(rack0, budget / 2.0 * (1.0 + 1e-9));
    EXPECT_LE(rack1, budget / 2.0 * (1.0 + 1e-9));
    // The hot rack actually uses its share.
    EXPECT_GT(rack0, budget / 2.0 * 0.9);

    // A demand-driven root, by contrast, moves budget to the hot rack.
    auto demandRoot = makeBudgetTreeAllocator("2x4:demand,greedy");
    std::vector<double> shifted;
    demandRoot->allocate(budget, cores, shifted);
    double hot = 0.0, cold = 0.0;
    for (size_t i = 0; i < 4; ++i)
        hot += shifted[i];
    for (size_t i = 4; i < 8; ++i)
        cold += shifted[i];
    EXPECT_GT(hot, rack0 + 1.0);
    EXPECT_LT(cold, rack1);
}

TEST_F(ClusterTest, TreeTopologyValidation)
{
    EXPECT_THROW(makeBudgetTreeAllocator("0x4"), std::runtime_error);
    EXPECT_THROW(makeBudgetTreeAllocator("2xbad"), std::runtime_error);
    EXPECT_THROW(makeBudgetTreeAllocator(""), std::runtime_error);
    EXPECT_THROW(makeBudgetTreeAllocator("2x2:uniform,demand,greedy"),
                 std::runtime_error);
    EXPECT_THROW(makeBudgetTreeAllocator("2x2:nonsense"),
                 std::runtime_error);
    auto tree = makeBudgetTreeAllocator("2x4x8:uniform,demand,greedy");
    EXPECT_EQ(tree->coreCount(), 64u);
    EXPECT_EQ(tree->spec(), "2x4x8 uniform/demand/greedy");
    // Replication of a single policy to every level.
    auto rep = makeBudgetTreeAllocator("4x4:greedy");
    EXPECT_EQ(rep->spec(), "4x4 greedy/greedy");
    // Core-count mismatch is a caller bug: caught at allocation time.
    const std::vector<CoreDemand> cores = syntheticDemands(
        config(), powerModel(), perfModel(), 8, 1);
    std::vector<double> limits;
    EXPECT_THROW(tree->allocate(64.0, cores, limits), std::logic_error);
}

TEST_F(ClusterTest, GreedyClusterDeterministicAcrossPoolWidths)
{
    // The sharded two-phase loop must not let the shard partition
    // perturb the greedy auction: same instructions, energy and
    // violation counts at every pool width.
    const Workload a = specWorkload("ammp", config().core, 1.2);
    const Workload b = specWorkload("mcf", config().core, 1.2);
    const Workload c = specWorkload("crafty", config().core, 1.2);
    const Workload d = specWorkload("swim", config().core, 1.2);

    ClusterConfig cc;
    cc.cores = {makeCore(&a), makeCore(&b), makeCore(&c), makeCore(&d),
                makeCore(&a), makeCore(&b), makeCore(&c), makeCore(&d)};
    cc.budgetW = 70.0;
    ClusterPlatform cluster(cc);
    GreedyPerfAllocator greedy;

    const ClusterResult serial = cluster.run(greedy, nullptr);
    for (size_t jobs : {1u, 2u, 3u, 8u}) {
        ThreadPool pool(jobs);
        const ClusterResult pooled = cluster.run(greedy, &pool);
        ASSERT_EQ(serial.cores.size(), pooled.cores.size());
        for (size_t i = 0; i < serial.cores.size(); ++i) {
            EXPECT_EQ(serial.cores[i].instructions,
                      pooled.cores[i].instructions) << "jobs " << jobs;
            EXPECT_DOUBLE_EQ(serial.cores[i].trueEnergyJ,
                             pooled.cores[i].trueEnergyJ);
        }
        EXPECT_EQ(serial.intervals, pooled.intervals);
        EXPECT_DOUBLE_EQ(serial.fractionOverBudgetTrue,
                         pooled.fractionOverBudgetTrue);
    }
}

TEST_F(ClusterTest, DemandBeatsUniformOnMixedManifestAt16Cores)
{
    // Mixed manifest: half core-bound (frequency-hungry), half
    // memory-bound (frequency-insensitive). Same global budget, same
    // simulated time — throughput is the aggregate retired count.
    const Workload coreBound = specWorkload("crafty", config().core, 6.0);
    const Workload memBound = specWorkload("swim", config().core, 6.0);

    ClusterConfig cc;
    for (int i = 0; i < 16; ++i) {
        cc.cores.push_back(
            makeCore(i % 2 == 0 ? &coreBound : &memBound));
        cc.cores.back().options.maxTime = secondsToTicks(1.5);
    }
    cc.budgetW = 16.0 * 11.0;
    ClusterPlatform cluster(cc);

    ThreadPool pool;
    UniformAllocator uniform;
    DemandProportionalAllocator demand;
    const ClusterResult uni = cluster.run(uniform, &pool);
    const ClusterResult dem = cluster.run(demand, &pool);

    // Same lockstep length (every core is time-bound).
    EXPECT_EQ(uni.intervals, dem.intervals);
    // Demand-proportional may not violate the budget more often...
    EXPECT_LE(dem.fractionOverBudgetTrue, uni.fractionOverBudgetTrue);
    // ...while retiring strictly more work from the same watts.
    EXPECT_GT(dem.instructions, uni.instructions);
}

// A SetPowerLimit scheduled at t = 0 is in force from the very first
// interval: allocation and the over-budget judgement both see the
// dropped budget, never the nominal one. (The old code only applied
// commands after interval 0 had already been allocated and judged, so
// a run entirely under a t = 0 drop reported fewer violations than it
// suffered.)
TEST_F(ClusterTest, BudgetDropAtTimeZeroGovernsFirstInterval)
{
    const Workload w = specWorkload("crafty", config().core, 0.3);
    ClusterConfig cc;
    cc.cores = {makeCore(&w), makeCore(&w)};
    cc.budgetW = 40.0;
    // Effectively unsatisfiable: even the lowest p-state draws more,
    // so every single interval must count as a violation.
    cc.budgetCommands.push_back(
        {0, ScheduledCommand::Kind::SetPowerLimit, 0.001});
    cc.recordAllocations = true;
    ClusterPlatform cluster(cc);
    UniformAllocator uniform;
    const ClusterResult res = cluster.run(uniform);

    ASSERT_GT(res.intervals, 0u);
    EXPECT_DOUBLE_EQ(res.fractionOverBudgetTrue, 1.0);
    ASSERT_FALSE(res.allocations.empty());
    for (const ClusterIntervalStat &stat : res.allocations)
        EXPECT_DOUBLE_EQ(stat.budgetW, 0.001)
            << "tick " << stat.when;
}

// fractionOverBudgetTrue is a fraction of executed rounds: 0 when no
// round ran (the documented zero-round convention — never NaN), and
// exactly violations/rounds on the shortest possible run.
TEST_F(ClusterTest, FractionOverBudgetDefinedOnDegenerateRuns)
{
    const ClusterResult empty;
    EXPECT_FALSE(std::isnan(empty.fractionOverBudgetTrue));
    EXPECT_DOUBLE_EQ(empty.fractionOverBudgetTrue, 0.0);

    // One interval of work under a generous budget: one round, zero
    // violations, fraction exactly 0.
    Workload w("tiny");
    Phase p;
    p.instructions = 1000;
    p.baseCpi = 1.0;
    w.add(p);
    ClusterConfig cc;
    cc.cores = {makeCore(&w)};
    cc.budgetW = 1000.0;
    ClusterPlatform cluster(cc);
    UniformAllocator uniform;
    const ClusterResult res = cluster.run(uniform);
    EXPECT_EQ(res.intervals, 1u);
    EXPECT_DOUBLE_EQ(res.fractionOverBudgetTrue, 0.0);
}

} // namespace
} // namespace aapm
