/**
 * @file
 * Tests for the online-recalibration extension: the RLS primitive and
 * the adaptive-coefficients PM variant (PM-A).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "mgmt/pm_adaptive.hh"
#include "models/online_fit.hh"
#include "platform/experiment.hh"
#include "workload/spec_suite.hh"

namespace aapm
{
namespace
{

TEST(OnlineFit, ConvergesOnCleanLine)
{
    OnlineLinearFit fit;
    for (int i = 0; i < 200; ++i) {
        const double x = 0.1 * (i % 30);
        fit.update(x, 3.0 * x + 12.0);
    }
    // Forgetting keeps a small covariance floor, so convergence is to
    // within a hair, not machine epsilon.
    EXPECT_NEAR(fit.slope(), 3.0, 1e-3);
    EXPECT_NEAR(fit.intercept(), 12.0, 1e-3);
    EXPECT_TRUE(fit.mature());
}

TEST(OnlineFit, ConvergesUnderNoise)
{
    OnlineLinearFit fit(0.995);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.uniform(0.0, 2.5);
        fit.update(x, 2.9 * x + 12.1 + rng.gaussian(0.0, 0.3));
    }
    EXPECT_NEAR(fit.slope(), 2.9, 0.15);
    EXPECT_NEAR(fit.intercept(), 12.1, 0.2);
}

TEST(OnlineFit, ForgettingTracksModelChange)
{
    OnlineLinearFit fit(0.95);
    for (int i = 0; i < 300; ++i)
        fit.update(0.1 * (i % 25), 2.0 * 0.1 * (i % 25) + 10.0);
    EXPECT_NEAR(fit.intercept(), 10.0, 0.1);
    // The workload changes character: +3 W everywhere.
    for (int i = 0; i < 300; ++i)
        fit.update(0.1 * (i % 25), 2.0 * 0.1 * (i % 25) + 13.0);
    EXPECT_NEAR(fit.intercept(), 13.0, 0.2);
}

TEST(OnlineFit, NotMatureWithoutSpread)
{
    OnlineLinearFit fit;
    for (int i = 0; i < 100; ++i)
        fit.update(1.0, 15.0);   // single x: slope unidentifiable
    EXPECT_FALSE(fit.mature());
    EXPECT_EQ(fit.count(), 100u);
}

TEST(OnlineFit, SeedSetsPredictionWithoutCount)
{
    OnlineLinearFit fit;
    fit.seed(2.93, 12.11);
    EXPECT_NEAR(fit.eval(1.0), 15.04, 1e-9);
    EXPECT_EQ(fit.count(), 0u);
    EXPECT_FALSE(fit.mature());
}

TEST(OnlineFit, ResetForgets)
{
    OnlineLinearFit fit;
    for (int i = 0; i < 50; ++i)
        fit.update(0.1 * i, 1.0 + 0.1 * i);
    fit.reset();
    EXPECT_EQ(fit.count(), 0u);
    EXPECT_DOUBLE_EQ(fit.slope(), 0.0);
}

TEST(OnlineFit, RejectsBadParameters)
{
    EXPECT_THROW(OnlineLinearFit(0.0), std::runtime_error);
    EXPECT_THROW(OnlineLinearFit(1.1), std::runtime_error);
    EXPECT_THROW(OnlineLinearFit(0.98, -1.0), std::runtime_error);
}

MonitorSample
hotSample(double dpc, double measured, size_t pstate)
{
    MonitorSample s;
    s.intervalSeconds = 0.01;
    s.cycles = 20'000'000;
    s.dpc = dpc;
    s.measuredPowerW = measured;
    s.pstate = pstate;
    return s;
}

TEST(PmAdaptiveTest, SeededFromOfflineModel)
{
    PmAdaptive pm(PowerEstimator::paperPentiumM(),
                  {.powerLimitW = 17.5});
    EXPECT_NEAR(pm.onlineFit(7).eval(1.0), 2.93 + 12.11, 1e-9);
    EXPECT_FALSE(pm.onlineFit(7).mature());
}

TEST(PmAdaptiveTest, LearnsHotWorkloadAndThrottles)
{
    // Measured power runs 2.5 W above the offline model at DPC 1.5 —
    // plain PM would keep 2000 MHz (est 16.5 + 0.5 < 17.5); PM-A must
    // learn and back off.
    PmAdaptive pm(PowerEstimator::paperPentiumM(),
                  {.powerLimitW = 17.5});
    PerformanceMaximizer plain(PowerEstimator::paperPentiumM(),
                               {.powerLimitW = 17.5});
    size_t state = 7;
    Rng rng(3);
    for (int i = 0; i < 60; ++i) {
        const double dpc = 1.5 + rng.uniform(-0.2, 0.2);
        const double measured =
            2.93 * dpc + 12.11 + 2.5 + rng.gaussian(0.0, 0.1);
        state = pm.decide(hotSample(dpc, measured, state), state);
    }
    EXPECT_LT(state, 7u);
    EXPECT_EQ(plain.decide(hotSample(1.5, 20.0, 7), 7), 7u);
}

TEST(PmAdaptiveTest, ResidualShiftCoversUnvisitedStates)
{
    PmAdaptive pm(PowerEstimator::paperPentiumM(),
                  {.powerLimitW = 17.5});
    size_t state = 7;
    // Consistent +2 W residual at the current state.
    for (int i = 0; i < 30; ++i)
        state = pm.decide(
            hotSample(1.0, 2.93 * 1.0 + 12.11 + 2.0, state), state);
    EXPECT_GT(pm.residualShiftW(), 1.0);
}

TEST(PmAdaptiveTest, ResetRestoresOfflineModel)
{
    PmAdaptive pm(PowerEstimator::paperPentiumM(),
                  {.powerLimitW = 17.5});
    size_t state = 7;
    for (int i = 0; i < 40; ++i)
        state = pm.decide(hotSample(1.5, 20.0, state), state);
    pm.reset();
    EXPECT_DOUBLE_EQ(pm.residualShiftW(), 0.0);
    EXPECT_FALSE(pm.onlineFit(7).mature());
    EXPECT_NEAR(pm.onlineFit(7).eval(0.0), 12.11, 1e-9);
}

TEST(PmAdaptiveTest, EndToEndFixesGalgel)
{
    PlatformConfig config;
    Platform platform(config);
    const TrainedModels models = trainModels(config);
    const Workload galgel = specWorkload("galgel", config.core, 4.0);
    const double limit = 13.5;

    PerformanceMaximizer plain(models.powerEstimator(config.pstates),
                               {.powerLimitW = limit});
    const RunResult rp = platform.run(galgel, plain);
    PmAdaptive adaptive(models.powerEstimator(config.pstates),
                        {.powerLimitW = limit});
    const RunResult ra = platform.run(galgel, adaptive);

    EXPECT_LT(ra.trace.fractionOverLimit(limit, 10),
              rp.trace.fractionOverLimit(limit, 10));
    EXPECT_LT(ra.trace.fractionOverLimit(limit, 10), 0.02);
}

TEST(PmAdaptiveTest, HarmlessOnWellModeledWorkloads)
{
    // On a workload the offline model already predicts well, PM-A
    // should behave like PM.
    PlatformConfig config;
    Platform platform(config);
    const TrainedModels models = trainModels(config);
    const Workload gzip = specWorkload("gzip", config.core, 3.0);

    PerformanceMaximizer plain(models.powerEstimator(config.pstates),
                               {.powerLimitW = 14.5});
    const RunResult rp = platform.run(gzip, plain);
    PmAdaptive adaptive(models.powerEstimator(config.pstates),
                        {.powerLimitW = 14.5});
    const RunResult ra = platform.run(gzip, adaptive);
    EXPECT_NEAR(ra.seconds, rp.seconds, 0.05 * rp.seconds);
}

} // namespace
} // namespace aapm
