/**
 * @file
 * Tests for the workload generators: MS-Loops characterization against
 * the cache simulator and the SPEC CPU2000 proxy suite's calibrated
 * placement (memory- vs core-bound, power ordering).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cpu/core_model.hh"
#include "dvfs/pstate.hh"
#include "power/truth_power.hh"
#include "workload/microbench.hh"
#include "workload/spec_suite.hh"

namespace aapm
{
namespace
{

class MicrobenchTest : public ::testing::Test
{
  protected:
    HierarchyConfig hier_;
    CoreParams core_;
};

TEST_F(MicrobenchTest, LoopNames)
{
    EXPECT_STREQ(loopKindName(LoopKind::Daxpy), "DAXPY");
    EXPECT_STREQ(loopKindName(LoopKind::Fma), "FMA");
    EXPECT_STREQ(loopKindName(LoopKind::Mcopy), "MCOPY");
    EXPECT_STREQ(loopKindName(LoopKind::MloadRand), "MLOAD_RAND");
}

TEST_F(MicrobenchTest, DisplayName)
{
    EXPECT_EQ((LoopSpec{LoopKind::Fma, 256 * 1024}).displayName(),
              "FMA-256KB");
    EXPECT_EQ((LoopSpec{LoopKind::Daxpy, 8 * 1024 * 1024}).displayName(),
              "DAXPY-8MB");
}

TEST_F(MicrobenchTest, StandardFootprintsCoverHierarchy)
{
    const auto fps = standardFootprints();
    ASSERT_EQ(fps.size(), 3u);
    EXPECT_LT(fps[0], hier_.l1.sizeBytes);            // L1-resident
    EXPECT_LT(fps[1], hier_.l2.sizeBytes);            // L2-resident
    EXPECT_GT(fps[2], hier_.l2.sizeBytes);            // DRAM-resident
}

TEST_F(MicrobenchTest, L1ResidentHasNoMisses)
{
    for (LoopKind kind : {LoopKind::Daxpy, LoopKind::Fma, LoopKind::Mcopy,
                          LoopKind::MloadRand}) {
        const Phase p = characterizeLoop({kind, 16 * 1024}, hier_, core_,
                                         1000);
        EXPECT_LT(p.l1MissPerInstr, 1e-3) << loopKindName(kind);
        EXPECT_LT(p.l2MissPerInstr, 1e-4) << loopKindName(kind);
    }
}

TEST_F(MicrobenchTest, L2ResidentMissesL1NotL2)
{
    for (LoopKind kind : {LoopKind::Daxpy, LoopKind::Fma, LoopKind::Mcopy,
                          LoopKind::MloadRand}) {
        const Phase p = characterizeLoop({kind, 256 * 1024}, hier_,
                                         core_, 1000);
        EXPECT_GT(p.l1MissPerInstr, 0.005) << loopKindName(kind);
        EXPECT_LT(p.l2MissPerInstr, 0.3 * p.l1MissPerInstr)
            << loopKindName(kind);
    }
}

TEST_F(MicrobenchTest, DramResidentMissesBothLevels)
{
    for (LoopKind kind : {LoopKind::Daxpy, LoopKind::Fma, LoopKind::Mcopy,
                          LoopKind::MloadRand}) {
        const Phase p = characterizeLoop({kind, 8 * 1024 * 1024}, hier_,
                                         core_, 1000);
        EXPECT_GT(p.l2MissPerInstr, 0.01) << loopKindName(kind);
    }
}

TEST_F(MicrobenchTest, SequentialLoopsGetPrefetchCoverage)
{
    const Phase fma = characterizeLoop({LoopKind::Fma, 8 * 1024 * 1024},
                                       hier_, core_, 1000);
    EXPECT_GT(fma.prefetchCoverage, 0.2);
    const Phase rand = characterizeLoop(
        {LoopKind::MloadRand, 8 * 1024 * 1024}, hier_, core_, 1000);
    EXPECT_LT(rand.prefetchCoverage, 0.1);
}

TEST_F(MicrobenchTest, RandomLoadIsLatencyBound)
{
    CoreModel core(core_);
    const Phase p = characterizeLoop(
        {LoopKind::MloadRand, 8 * 1024 * 1024}, hier_, core_, 1000);
    // A dependent pointer chase at 2 GHz spends almost all its time
    // waiting on DRAM.
    EXPECT_LT(core.ipc(p, 2.0), 0.1);
}

TEST_F(MicrobenchTest, TrainingSetHasTwelvePoints)
{
    const auto set = msLoopsTrainingSet(hier_, core_, 1000);
    EXPECT_EQ(set.size(), 12u);
    // Every phase validated and sized as requested.
    for (const auto &[spec, phase] : set)
        EXPECT_EQ(phase.instructions, 1000u);
}

TEST_F(MicrobenchTest, CharacterizationIsDeterministic)
{
    const LoopSpec spec{LoopKind::MloadRand, 256 * 1024};
    const Phase a = characterizeLoop(spec, hier_, core_, 1000, 7);
    const Phase b = characterizeLoop(spec, hier_, core_, 1000, 7);
    EXPECT_DOUBLE_EQ(a.l1MissPerInstr, b.l1MissPerInstr);
    EXPECT_DOUBLE_EQ(a.l2MissPerInstr, b.l2MissPerInstr);
    EXPECT_DOUBLE_EQ(a.prefetchCoverage, b.prefetchCoverage);
}

TEST_F(MicrobenchTest, WorkloadWrapsSinglePhase)
{
    const Workload w = microbenchWorkload({LoopKind::Fma, 256 * 1024},
                                          hier_, core_, 5000);
    EXPECT_EQ(w.phases().size(), 1u);
    EXPECT_EQ(w.totalInstructions(), 5000u);
    EXPECT_EQ(w.name(), "FMA-256KB");
}

TEST_F(MicrobenchTest, TinyFootprintRejected)
{
    EXPECT_THROW(
        characterizeLoop({LoopKind::Fma, 1024}, hier_, core_, 1000),
        std::runtime_error);
}

class SpecSuiteTest : public ::testing::Test
{
  protected:
    CoreParams core_;
    CoreModel model_{core_};
    TruthPowerModel power_;
    PStateTable pstates_ = PStateTable::pentiumM();

    double
    powerAt2G(const Workload &w)
    {
        // Instruction-weighted steady power across phases at 2 GHz.
        double energy = 0.0, time = 0.0;
        for (const auto &ph : w.phases()) {
            ExecChunk chunk;
            chunk.phase = &ph;
            chunk.freqGhz = 2.0;
            chunk.events = model_.eventsFor(ph, 2.0, 1e6);
            const double t = chunk.events.cycles / 2e9;
            energy += power_.power(chunk, pstates_[7]) * t;
            time += t;
        }
        return energy / time;
    }

    double
    perfRatio(const Workload &w, double f_lo, double f_hi)
    {
        // Suite-convention performance = 1 / execution time.
        double t_lo = 0.0, t_hi = 0.0;
        for (const auto &ph : w.phases()) {
            const double n = static_cast<double>(ph.instructions);
            t_lo += n / model_.instrPerSec(ph, f_lo);
            t_hi += n / model_.instrPerSec(ph, f_hi);
        }
        return t_hi > 0.0 ? t_lo / t_hi : 0.0;
    }
};

TEST_F(SpecSuiteTest, TwentySixBenchmarks)
{
    EXPECT_EQ(specSuiteNames().size(), 26u);
    EXPECT_TRUE(isSpecBenchmark("swim"));
    EXPECT_TRUE(isSpecBenchmark("sixtrack"));
    EXPECT_FALSE(isSpecBenchmark("linpack"));
}

TEST_F(SpecSuiteTest, UnknownNameFatal)
{
    EXPECT_THROW(specWorkload("nonesuch", core_), std::runtime_error);
}

TEST_F(SpecSuiteTest, DurationApproximatelyTarget)
{
    for (const char *name : {"swim", "sixtrack", "ammp", "galgel"}) {
        const Workload w = specWorkload(name, core_, 10.0);
        double t = 0.0;
        for (uint64_t r = 0; r < w.repeats(); ++r)
            for (const auto &ph : w.phases())
                t += static_cast<double>(ph.instructions) /
                     model_.instrPerSec(ph, 2.0);
        EXPECT_NEAR(t, 10.0, 1.0) << name;
    }
}

TEST_F(SpecSuiteTest, SwimIsMemoryBoundSixtrackIsNot)
{
    const Workload swim = specWorkload("swim", core_, 5.0);
    const Workload six = specWorkload("sixtrack", core_, 5.0);
    // swim: raising 1600 -> 2000 MHz buys almost nothing (Fig 2).
    EXPECT_LT(perfRatio(swim, 1.6, 2.0) - 1.0, 0.05);
    // sixtrack: nearly the full 25%.
    EXPECT_GT(perfRatio(six, 1.6, 2.0) - 1.0, 0.22);
}

TEST_F(SpecSuiteTest, GapSitsBetweenExtremes)
{
    const Workload gap = specWorkload("gap", core_, 5.0);
    const double gain = perfRatio(gap, 1.6, 2.0) - 1.0;
    EXPECT_GT(gain, 0.05);
    EXPECT_LT(gain, 0.22);
}

TEST_F(SpecSuiteTest, CraftyAndPerlbmkAreHottest)
{
    // Paper: "crafty and perlbmk have the highest average power in the
    // SPEC workloads, followed by galgel".
    const double crafty = powerAt2G(specWorkload("crafty", core_, 5.0));
    const double perl = powerAt2G(specWorkload("perlbmk", core_, 5.0));
    for (const auto &name : specSuiteNames()) {
        if (name == "crafty" || name == "perlbmk" || name == "galgel")
            continue;
        const double p = powerAt2G(specWorkload(name, core_, 5.0));
        EXPECT_LT(p, std::max(crafty, perl) + 0.01) << name;
    }
}

TEST_F(SpecSuiteTest, PowerVariationExceeds35PercentOfPeak)
{
    // Fig 1: the suite's power range at 2 GHz spans more than 35% of
    // peak operating power (peak ~ the hottest workload's power).
    double lo = 1e9, hi = 0.0;
    for (const auto &name : specSuiteNames()) {
        const double p = powerAt2G(specWorkload(name, core_, 5.0));
        lo = std::min(lo, p);
        hi = std::max(hi, p);
    }
    EXPECT_GT((hi - lo) / hi, 0.30);
}

TEST_F(SpecSuiteTest, MemoryBoundGroupClassifiesMemoryBound)
{
    for (const char *name : {"swim", "lucas", "equake", "mcf", "applu"}) {
        const Workload w = specWorkload(name, core_, 5.0);
        const double docc_per_instr = w.weightedAverage(
            [&](const Phase &p) {
                return model_.dcuOutstandingPerInstr(p, 2.0);
            });
        EXPECT_GE(docc_per_instr, 1.25) << name;
    }
}

TEST_F(SpecSuiteTest, CoreBoundGroupClassifiesCoreBound)
{
    for (const char *name :
         {"perlbmk", "mesa", "eon", "crafty", "sixtrack"}) {
        const Workload w = specWorkload(name, core_, 5.0);
        const double docc_per_instr = w.weightedAverage(
            [&](const Phase &p) {
                return model_.dcuOutstandingPerInstr(p, 2.0);
            });
        EXPECT_LT(docc_per_instr, 1.21) << name;
    }
}

TEST_F(SpecSuiteTest, AmmpAlternatesPhases)
{
    const Workload w = specWorkload("ammp", core_, 5.0);
    ASSERT_EQ(w.phases().size(), 2u);
    const double d0 =
        model_.dcuOutstandingPerInstr(w.phases()[0], 2.0);
    const double d1 =
        model_.dcuOutstandingPerInstr(w.phases()[1], 2.0);
    // One memory-bound phase, one core-bound phase.
    EXPECT_GT(std::max(d0, d1), 1.25);
    EXPECT_LT(std::min(d0, d1), 1.0);
}

TEST_F(SpecSuiteTest, GalgelPhasesAreShortAndBursty)
{
    const Workload w = specWorkload("galgel", core_, 5.0);
    // Structured burst pattern: many short bursts + drains, one long
    // burst per iteration.
    ASSERT_GT(w.phases().size(), 10u);
    size_t short_phases = 0, long_phases = 0;
    for (const auto &ph : w.phases()) {
        const double seconds = static_cast<double>(ph.instructions) /
                               model_.instrPerSec(ph, 2.0);
        if (seconds < 0.05)
            ++short_phases;
        else
            ++long_phases;
        EXPECT_LT(seconds, 0.2);
    }
    EXPECT_GT(short_phases, 10u);   // ~10 ms sampling-scale bursts
    EXPECT_EQ(long_phases, 1u);     // the PM-luring long burst
}

TEST_F(SpecSuiteTest, FullSuiteBuilds)
{
    const auto suite = specSuite(core_, 5.0);
    EXPECT_EQ(suite.size(), 26u);
    for (const auto &w : suite)
        EXPECT_FALSE(w.phases().empty());
}

} // namespace
} // namespace aapm
