/**
 * @file
 * Tests for the paper's online estimation models and the training
 * pipeline: Table II coefficients, Equation 3/4 semantics, LAD fitting
 * of the power model, and the trained constants' proximity to the
 * published ones.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "models/perf_estimator.hh"
#include "models/power_estimator.hh"
#include "models/trainer.hh"
#include "platform/experiment.hh"

namespace aapm
{
namespace
{

TEST(PowerEstimatorTest, PaperTableII)
{
    const PowerEstimator est = PowerEstimator::paperPentiumM();
    // Spot-check published coefficients.
    EXPECT_DOUBLE_EQ(est.coeffs(0).alpha, 0.34);
    EXPECT_DOUBLE_EQ(est.coeffs(0).beta, 2.58);
    EXPECT_DOUBLE_EQ(est.coeffs(7).alpha, 2.93);
    EXPECT_DOUBLE_EQ(est.coeffs(7).beta, 12.11);
    // P = alpha*DPC + beta.
    EXPECT_NEAR(est.estimate(7, 2.0), 2.93 * 2.0 + 12.11, 1e-12);
    EXPECT_NEAR(est.estimate(0, 0.0), 2.58, 1e-12);
}

TEST(PowerEstimatorTest, Equation4DpcProjection)
{
    const PowerEstimator est = PowerEstimator::paperPentiumM();
    // Lowering frequency: DPC scales by f/f'.
    EXPECT_NEAR(est.projectDpc(7, 3, 1.0), 2000.0 / 1200.0, 1e-12);
    // Raising frequency: DPC unchanged (conservative).
    EXPECT_DOUBLE_EQ(est.projectDpc(3, 7, 1.0), 1.0);
    // Same state: unchanged.
    EXPECT_DOUBLE_EQ(est.projectDpc(5, 5, 0.7), 0.7);
}

TEST(PowerEstimatorTest, EstimateAtComposesProjection)
{
    const PowerEstimator est = PowerEstimator::paperPentiumM();
    const double direct =
        est.estimate(3, est.projectDpc(7, 3, 1.5));
    EXPECT_DOUBLE_EQ(est.estimateAt(7, 1.5, 3), direct);
}

TEST(PowerEstimatorTest, MonotoneInDpc)
{
    const PowerEstimator est = PowerEstimator::paperPentiumM();
    for (size_t ps = 0; ps < 8; ++ps)
        EXPECT_GT(est.estimate(ps, 2.0), est.estimate(ps, 1.0));
}

TEST(PowerEstimatorTest, RejectsMismatchedCoeffCount)
{
    EXPECT_THROW(
        PowerEstimator(PStateTable::pentiumM(), {{1.0, 1.0}}),
        std::runtime_error);
}

TEST(PerfEstimatorTest, ClassificationBoundary)
{
    const PerfEstimator est(1.21, 0.81);
    EXPECT_FALSE(est.isMemoryBound(1.0, 1.20));
    EXPECT_TRUE(est.isMemoryBound(1.0, 1.21));
    EXPECT_TRUE(est.isMemoryBound(0.5, 0.70));   // 1.4 >= 1.21
    EXPECT_TRUE(est.isMemoryBound(0.0, 0.0));    // stalled
}

TEST(PerfEstimatorTest, CoreBoundIpcUnchanged)
{
    const PerfEstimator est(1.21, 0.81);
    EXPECT_DOUBLE_EQ(est.projectIpc(1.5, 0.1, 2000.0, 600.0), 1.5);
    // Performance then scales linearly with frequency.
    EXPECT_NEAR(est.projectPerf(1.5, 0.1, 2000.0, 600.0) /
                    est.projectPerf(1.5, 0.1, 2000.0, 2000.0),
                0.3, 1e-12);
}

TEST(PerfEstimatorTest, MemoryBoundEquation3)
{
    const PerfEstimator est(1.21, 0.81);
    // IPC' = IPC * (f/f')^0.81.
    EXPECT_NEAR(est.projectIpc(0.5, 2.0, 2000.0, 1000.0),
                0.5 * std::pow(2.0, 0.81), 1e-12);
    // Perf ratio = (f'/f)^(1-0.81).
    const double ratio = est.projectPerf(0.5, 2.0, 2000.0, 600.0) /
                         est.projectPerf(0.5, 2.0, 2000.0, 2000.0);
    EXPECT_NEAR(ratio, std::pow(0.3, 0.19), 1e-12);
}

TEST(PerfEstimatorTest, PaperConstants)
{
    EXPECT_DOUBLE_EQ(PerfEstimator::PaperThreshold, 1.21);
    EXPECT_DOUBLE_EQ(PerfEstimator::PaperExponent, 0.81);
    EXPECT_DOUBLE_EQ(PerfEstimator::AlternateExponent, 0.59);
}

TEST(PerfEstimatorTest, RejectsBadParams)
{
    EXPECT_THROW(PerfEstimator(-0.1, 0.8), std::runtime_error);
    EXPECT_THROW(PerfEstimator(1.2, 1.5), std::runtime_error);
}

TEST(PerfEstimatorTest, AtExactly80PercentFloor600IsExcludedWith081)
{
    // The paper's discretization remark: with e = 0.81 a memory-bound
    // workload at an 80% floor must run at 800 MHz, because 600 MHz
    // projects to just under the floor.
    const PerfEstimator est(1.21, 0.81);
    const double peak = est.projectPerf(0.5, 2.0, 2000.0, 2000.0);
    EXPECT_LT(est.projectPerf(0.5, 2.0, 2000.0, 600.0), 0.8 * peak);
    EXPECT_GT(est.projectPerf(0.5, 2.0, 2000.0, 800.0), 0.8 * peak);
}

class TrainerTest : public ::testing::Test
{
  protected:
    static const TrainedModels &
    models()
    {
        static const TrainedModels m = trainModels(PlatformConfig{});
        return m;
    }
};

TEST_F(TrainerTest, TwelveTrainingPhases)
{
    EXPECT_EQ(models().trainingPhases.size(), 12u);
}

TEST_F(TrainerTest, NinetySixTrainingPoints)
{
    // 12 phases x 8 p-states.
    EXPECT_EQ(models().power.points.size(), 96u);
}

TEST_F(TrainerTest, CoefficientsMonotoneInPState)
{
    const auto &c = models().power.coeffs;
    ASSERT_EQ(c.size(), 8u);
    for (size_t i = 1; i < c.size(); ++i) {
        EXPECT_GT(c[i].beta, c[i - 1].beta) << i;
        EXPECT_GT(c[i].alpha, 0.0) << i;
    }
}

TEST_F(TrainerTest, CoefficientsNearPaperTableII)
{
    // The platform is calibrated so the fitted model lands near the
    // published coefficients (same counters, same structure).
    const PowerEstimator paper = PowerEstimator::paperPentiumM();
    const auto &c = models().power.coeffs;
    EXPECT_NEAR(c[7].alpha, paper.coeffs(7).alpha, 0.45);
    EXPECT_NEAR(c[7].beta, paper.coeffs(7).beta, 1.2);
    EXPECT_NEAR(c[0].beta, paper.coeffs(0).beta, 0.8);
}

TEST_F(TrainerTest, FitResidualsAreSmall)
{
    for (double mae : models().power.meanAbsErrorW)
        EXPECT_LT(mae, 1.0);
}

TEST_F(TrainerTest, PerfModelNearPaperConstants)
{
    EXPECT_NEAR(models().perf.threshold,
                PerfEstimator::PaperThreshold, 0.35);
    EXPECT_NEAR(models().perf.exponent, PerfEstimator::PaperExponent,
                0.12);
    EXPECT_LT(models().perf.loss, 0.10);
}

TEST_F(TrainerTest, EstimatorsConstructFromResults)
{
    const PStateTable table = PStateTable::pentiumM();
    const PowerEstimator pe = models().powerEstimator(table);
    EXPECT_GT(pe.estimate(7, 1.0), pe.estimate(0, 1.0));
    const PerfEstimator fe = models().perfEstimator();
    EXPECT_GT(fe.exponent(), 0.0);
}

TEST_F(TrainerTest, TrainingPowerPredictionsReasonable)
{
    // The fitted model applied to its own training points should be
    // within ~2 W everywhere (per-sample accuracy, the paper's stated
    // focus). The worst residual is the hottest point (FMA-256KB),
    // which the LAD fit under-predicts — the same failure mode the
    // paper reports for galgel.
    const PowerEstimator est =
        models().powerEstimator(PStateTable::pentiumM());
    for (const auto &pt : models().power.points) {
        EXPECT_NEAR(est.estimate(pt.pstate, pt.dpc), pt.powerW, 2.0)
            << pt.name << " @ " << pt.pstate;
    }
}

TEST_F(TrainerTest, EmptyTrainingSetFatal)
{
    TrainingSetup setup;
    EXPECT_THROW(collectTrainingPoints({}, setup), std::runtime_error);
    EXPECT_THROW(trainPerfModel({}, setup), std::runtime_error);
}

TEST_F(TrainerTest, WorstCaseTableMatchesPaperShape)
{
    // Table III analog: worst-case (FMA-256KB) power rises steeply and
    // lands near the published endpoints.
    Platform platform;
    const auto table = worstCasePowerTable(platform);
    ASSERT_EQ(table.size(), 8u);
    for (size_t i = 1; i < 8; ++i)
        EXPECT_GT(table[i], table[i - 1]);
    EXPECT_NEAR(table[0], 3.86, 1.5);    // paper: 3.86 W at 600 MHz
    EXPECT_NEAR(table[7], 17.78, 1.5);   // paper: 17.78 W at 2000 MHz
}

} // namespace
} // namespace aapm
