/**
 * @file
 * Tests for the analytical core timing model: the frequency-scaling
 * behavior every result in the paper depends on, event accounting, and
 * the advance() loop.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cpu/core_model.hh"
#include "sim/ticks.hh"
#include "workload/workload.hh"

namespace aapm
{
namespace
{

Phase
corePhase(uint64_t instrs = 1000)
{
    Phase p;
    p.name = "core";
    p.instructions = instrs;
    p.baseCpi = 0.8;
    p.decodeRatio = 1.3;
    p.memPerInstr = 0.4;
    p.l1MissPerInstr = 0.0;
    p.l2MissPerInstr = 0.0;
    return p;
}

Phase
memPhase(uint64_t instrs = 1000)
{
    Phase p;
    p.name = "mem";
    p.instructions = instrs;
    p.baseCpi = 0.8;
    p.decodeRatio = 1.2;
    p.memPerInstr = 0.5;
    p.l1MissPerInstr = 0.08;
    p.l2MissPerInstr = 0.06;
    p.prefetchCoverage = 0.2;
    p.mlp = 1.5;
    return p;
}

TEST(CoreModel, CoreBoundCpiFrequencyInvariant)
{
    CoreModel core;
    const Phase p = corePhase();
    EXPECT_NEAR(core.cpi(p, 2.0), core.cpi(p, 0.6), 1e-12);
}

TEST(CoreModel, CoreBoundPerfScalesWithFrequency)
{
    CoreModel core;
    const Phase p = corePhase();
    const double perf2 = core.instrPerSec(p, 2.0);
    const double perf1 = core.instrPerSec(p, 1.0);
    EXPECT_NEAR(perf2 / perf1, 2.0, 1e-9);
}

TEST(CoreModel, MemoryBoundCpiGrowsWithFrequency)
{
    CoreModel core;
    const Phase p = memPhase();
    EXPECT_GT(core.cpi(p, 2.0), core.cpi(p, 1.0));
    EXPECT_GT(core.cpi(p, 1.0), core.cpi(p, 0.6));
}

TEST(CoreModel, MemoryBoundPerfSublinearInFrequency)
{
    CoreModel core;
    const Phase p = memPhase();
    const double perf2 = core.instrPerSec(p, 2.0);
    const double perf1 = core.instrPerSec(p, 1.0);
    EXPECT_GT(perf2 / perf1, 1.0);
    EXPECT_LT(perf2 / perf1, 2.0);
}

TEST(CoreModel, PerfStrictlyIncreasesWithFrequency)
{
    // Even the most memory-bound phase never runs *slower* at a higher
    // frequency (time per instruction is non-increasing in f).
    CoreModel core;
    Phase p = memPhase();
    p.mlp = 1.0;
    p.l2MissPerInstr = 0.08;
    p.l1MissPerInstr = 0.08;
    double prev = 0.0;
    for (double f = 0.6; f <= 2.01; f += 0.2) {
        const double perf = core.instrPerSec(p, f);
        EXPECT_GE(perf, prev);
        prev = perf;
    }
}

TEST(CoreModel, DcuOccupancyMatchesStallStructure)
{
    CoreModel core;
    const Phase p = memPhase();
    // Memory-bound phase: occupancy per instruction should be within
    // (0, CPI].
    const double docc = core.dcuOutstandingPerInstr(p, 2.0);
    EXPECT_GT(docc, 0.0);
    EXPECT_LE(docc, core.cpi(p, 2.0));
    // Core phase: zero.
    EXPECT_DOUBLE_EQ(core.dcuOutstandingPerInstr(corePhase(), 2.0), 0.0);
}

TEST(CoreModel, DcuPerInstrGrowsWithFrequency)
{
    CoreModel core;
    const Phase p = memPhase();
    EXPECT_GT(core.dcuOutstandingPerInstr(p, 2.0),
              core.dcuOutstandingPerInstr(p, 0.6));
}

TEST(CoreModel, BandwidthFloorBindsStreamingPhases)
{
    CoreModel core;
    Phase p = memPhase();
    // Saturate: heavy fully-covered traffic, tiny demand latency.
    p.l1MissPerInstr = 0.12;
    p.l2MissPerInstr = 0.12;
    p.prefetchCoverage = 1.0;
    p.mlp = 8.0;
    const double bw_ns = core.bandwidthFloorNsPerInstr(p);
    EXPECT_GT(bw_ns, 0.0);
    // At 2 GHz the bandwidth term must govern.
    EXPECT_NEAR(core.cpi(p, 2.0), bw_ns * 2.0, 1e-9);
}

TEST(CoreModel, EventsScaleLinearlyWithInstructions)
{
    CoreModel core;
    const Phase p = memPhase();
    const EventTotals e1 = core.eventsFor(p, 2.0, 1000.0);
    const EventTotals e2 = core.eventsFor(p, 2.0, 2000.0);
    EXPECT_NEAR(e2.cycles, 2.0 * e1.cycles, 1e-6);
    EXPECT_NEAR(e2.instructionsDecoded, 2.0 * e1.instructionsDecoded,
                1e-6);
    EXPECT_NEAR(e2.busMemoryRequests, 2.0 * e1.busMemoryRequests, 1e-6);
}

TEST(CoreModel, EventRatesMatchPhaseParameters)
{
    CoreModel core;
    const Phase p = memPhase();
    const EventTotals e = core.eventsFor(p, 2.0, 1e6);
    EXPECT_NEAR(e.instructionsDecoded / e.instructionsRetired,
                p.decodeRatio, 1e-9);
    EXPECT_NEAR(e.l2Requests / e.instructionsRetired, p.l1MissPerInstr,
                1e-9);
    EXPECT_NEAR(e.cycles / e.instructionsRetired, core.cpi(p, 2.0),
                1e-9);
}

TEST(CoreModel, AdvanceConsumesBudget)
{
    CoreModel core;
    Workload w("w");
    w.add(corePhase(100'000'000));
    WorkloadCursor cursor(w);
    std::vector<ExecChunk> chunks;
    const Tick budget = 10 * TicksPerMs;
    const Tick used = core.advance(cursor, 2.0, budget, chunks);
    EXPECT_EQ(used, budget);
    ASSERT_EQ(chunks.size(), 1u);
    // 10 ms at 2 GHz / 0.8 CPI = 25M instructions.
    EXPECT_NEAR(static_cast<double>(chunks[0].instructions), 25e6,
                25e6 * 1e-3);
    EXPECT_FALSE(cursor.done());
}

TEST(CoreModel, AdvanceStopsWhenWorkloadEnds)
{
    CoreModel core;
    Workload w("w");
    w.add(corePhase(1000));
    WorkloadCursor cursor(w);
    std::vector<ExecChunk> chunks;
    const Tick used = core.advance(cursor, 2.0, TicksPerSec, chunks);
    EXPECT_TRUE(cursor.done());
    EXPECT_LT(used, TicksPerSec);
    EXPECT_EQ(cursor.retired(), 1000u);
}

TEST(CoreModel, AdvanceCrossesPhaseBoundaries)
{
    CoreModel core;
    Workload w("w");
    w.add(corePhase(1'000'000));
    w.add(memPhase(1'000'000));
    WorkloadCursor cursor(w);
    std::vector<ExecChunk> chunks;
    core.advance(cursor, 2.0, TicksPerSec, chunks);
    ASSERT_EQ(chunks.size(), 2u);
    EXPECT_EQ(chunks[0].phase->name, "core");
    EXPECT_EQ(chunks[1].phase->name, "mem");
    EXPECT_EQ(chunks[0].instructions, 1'000'000u);
    EXPECT_EQ(chunks[1].instructions, 1'000'000u);
}

TEST(CoreModel, AdvanceRespectsRepeats)
{
    CoreModel core;
    Workload w("w", 3);
    w.add(corePhase(1000));
    WorkloadCursor cursor(w);
    std::vector<ExecChunk> chunks;
    core.advance(cursor, 2.0, TicksPerSec, chunks);
    EXPECT_TRUE(cursor.done());
    EXPECT_EQ(cursor.retired(), 3000u);
    EXPECT_EQ(chunks.size(), 3u);
}

TEST(CoreModel, AdvanceDurationsSumToUsed)
{
    CoreModel core;
    Workload w("w", 5);
    w.add(corePhase(500'000));
    w.add(memPhase(300'000));
    WorkloadCursor cursor(w);
    std::vector<ExecChunk> chunks;
    const Tick used =
        core.advance(cursor, 1.4, 7 * TicksPerMs, chunks);
    Tick sum = 0;
    for (const auto &c : chunks)
        sum += c.duration;
    // The budget may end mid-instruction; that sliver is consumed but
    // not attributed to any chunk. It is bounded by one instruction
    // time (a few ns).
    EXPECT_LE(sum, used);
    EXPECT_LT(used - sum, 10 * TicksPerNs);
    EXPECT_LE(used, 7 * TicksPerMs);
}

TEST(CoreModel, LowerFrequencyRetiresFewerInstructionsPerQuantum)
{
    CoreModel core;
    Workload w("w");
    w.add(corePhase(1'000'000'000));
    std::vector<ExecChunk> fast_chunks, slow_chunks;
    WorkloadCursor fast(w), slow(w);
    core.advance(fast, 2.0, 10 * TicksPerMs, fast_chunks);
    core.advance(slow, 0.6, 10 * TicksPerMs, slow_chunks);
    EXPECT_GT(fast.retired(), slow.retired());
    EXPECT_NEAR(static_cast<double>(fast.retired()) / slow.retired(),
                2.0 / 0.6, 0.01);
}

TEST(CoreModel, InvalidFrequencyPanics)
{
    CoreModel core;
    const Phase p = corePhase();
    EXPECT_THROW(core.cpi(p, 0.0), std::logic_error);
    EXPECT_THROW(core.cpi(p, -1.0), std::logic_error);
}

TEST(EventTotalsTest, Accumulate)
{
    EventTotals a, b;
    a.cycles = 10;
    a.fpOps = 2;
    b.cycles = 5;
    b.fpOps = 1;
    a += b;
    EXPECT_DOUBLE_EQ(a.cycles, 15.0);
    EXPECT_DOUBLE_EQ(a.fpOps, 3.0);
}

// Property sweep over a grid of phases and frequencies: CPI decomposes
// sanely and IPC stays positive/bounded.
struct PhaseSweepParam
{
    double base_cpi;
    double l2_miss;
    double mlp;
};

class CoreModelSweep : public ::testing::TestWithParam<PhaseSweepParam>
{
};

TEST_P(CoreModelSweep, IpcPositiveAndBounded)
{
    const auto param = GetParam();
    CoreModel core;
    Phase p = memPhase();
    p.baseCpi = param.base_cpi;
    p.l1MissPerInstr = std::max(p.l1MissPerInstr, param.l2_miss);
    p.l2MissPerInstr = param.l2_miss;
    p.mlp = param.mlp;
    for (double f : {0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}) {
        const double ipc = core.ipc(p, f);
        EXPECT_GT(ipc, 0.0);
        EXPECT_LE(ipc, 1.0 / param.base_cpi + 1e-9);
    }
}

TEST_P(CoreModelSweep, TimePerInstrMonotoneNonIncreasingInFreq)
{
    const auto param = GetParam();
    CoreModel core;
    Phase p = memPhase();
    p.baseCpi = param.base_cpi;
    p.l1MissPerInstr = std::max(p.l1MissPerInstr, param.l2_miss);
    p.l2MissPerInstr = param.l2_miss;
    p.mlp = param.mlp;
    double prev_tpi = 1e18;
    for (double f : {0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}) {
        const double tpi = core.cpi(p, f) / f;
        EXPECT_LE(tpi, prev_tpi * (1.0 + 1e-12));
        prev_tpi = tpi;
    }
}

INSTANTIATE_TEST_SUITE_P(
    PhaseGrid, CoreModelSweep,
    ::testing::Values(PhaseSweepParam{0.5, 0.0, 1.0},
                      PhaseSweepParam{0.5, 0.02, 1.0},
                      PhaseSweepParam{0.5, 0.06, 2.0},
                      PhaseSweepParam{1.0, 0.0, 1.0},
                      PhaseSweepParam{1.0, 0.04, 1.5},
                      PhaseSweepParam{1.5, 0.08, 3.0},
                      PhaseSweepParam{2.0, 0.01, 1.2}));

} // namespace
} // namespace aapm
