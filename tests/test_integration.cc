/**
 * @file
 * End-to-end integration tests: the paper's two solutions running on
 * the full simulated platform with trained models, checked against the
 * properties the paper claims (limit adherence, floor adherence,
 * dynamic-over-static benefit, known violators).
 */

#include <gtest/gtest.h>

#include <memory>

#include "mgmt/performance_maximizer.hh"
#include "mgmt/pm_feedback.hh"
#include "mgmt/power_save.hh"
#include "mgmt/static_clock.hh"
#include "platform/experiment.hh"
#include "workload/spec_suite.hh"

namespace aapm
{
namespace
{

/** Shared expensive fixtures: platform config + trained models. */
class IntegrationTest : public ::testing::Test
{
  protected:
    static const PlatformConfig &
    config()
    {
        static const PlatformConfig c;
        return c;
    }

    static const TrainedModels &
    models()
    {
        static const TrainedModels m = trainModels(config());
        return m;
    }

    static PerformanceMaximizer
    makePm(double limit)
    {
        return PerformanceMaximizer(
            models().powerEstimator(config().pstates),
            PmConfig{.powerLimitW = limit});
    }

    static PowerSave
    makePs(double floor)
    {
        return PowerSave(config().pstates, models().perfEstimator(),
                         PsConfig{floor});
    }
};

TEST_F(IntegrationTest, PmRespectsLimitOnSteadyWorkloads)
{
    Platform platform(config());
    for (const char *name : {"swim", "sixtrack", "gzip", "ammp"}) {
        const Workload w = specWorkload(name, config().core, 4.0);
        for (double limit : {17.5, 14.5, 11.5}) {
            auto pm = makePm(limit);
            const RunResult r = platform.run(w, pm);
            // 100 ms moving-average adherence (paper's metric): allow
            // the small slack the paper itself reports.
            EXPECT_LT(r.trace.fractionOverLimit(limit, 10), 0.02)
                << name << " @ " << limit;
        }
    }
}

TEST_F(IntegrationTest, PmBeatsStaticClockingUnderSameLimit)
{
    Platform platform(config());
    const auto worst = worstCasePowerTable(platform);
    const Workload w = specWorkload("sixtrack", config().core, 3.0);
    const double limit = 17.5;

    auto pm = makePm(limit);
    const RunResult dynamic = platform.run(w, pm);
    const size_t static_idx = StaticClock::chooseForLimit(worst, limit);
    const RunResult fixed = platform.runAtPState(w, static_idx);

    // Dynamic clocking exploits sixtrack's low power to run faster.
    EXPECT_LT(dynamic.seconds, fixed.seconds * 0.98);
}

TEST_F(IntegrationTest, PmAdaptsToWorkloadPhases)
{
    // On ammp under a tight limit, PM should use more than one p-state
    // (Fig 5's modulation).
    Platform platform(config());
    auto pm = makePm(11.5);
    const Workload ammp = specWorkload("ammp", config().core, 4.0);
    const RunResult r = platform.run(ammp, pm);
    int used = 0;
    for (Tick t : r.dvfs.residency) {
        if (t > 10 * TicksPerMs)
            ++used;
    }
    EXPECT_GE(used, 2);
}

TEST_F(IntegrationTest, PsMeetsFloorOnWellBehavedWorkloads)
{
    Platform platform(config());
    for (const char *name : {"swim", "sixtrack", "gzip", "ammp",
                             "equake"}) {
        const Workload w = specWorkload(name, config().core, 4.0);
        const RunResult base =
            platform.runAtPState(w, config().pstates.maxIndex());
        for (double floor : {0.8, 0.6, 0.4}) {
            auto ps = makePs(floor);
            const RunResult r = platform.run(w, ps);
            const double perf = base.seconds / r.seconds;
            // Allow a small tolerance for discretization and noise.
            EXPECT_GT(perf, floor - 0.04) << name << " @ " << floor;
        }
    }
}

TEST_F(IntegrationTest, PsSavesEnergy)
{
    Platform platform(config());
    for (const char *name : {"swim", "ammp", "gzip"}) {
        const Workload w = specWorkload(name, config().core, 3.0);
        const RunResult base =
            platform.runAtPState(w, config().pstates.maxIndex());
        auto ps = makePs(0.8);
        const RunResult r = platform.run(w, ps);
        EXPECT_LT(r.trueEnergyJ, base.trueEnergyJ) << name;
    }
}

TEST_F(IntegrationTest, PsSavesMoreOnMemoryBoundWork)
{
    Platform platform(config());
    auto energy_saving = [&](const char *name) {
        const Workload w = specWorkload(name, config().core, 3.0);
        const RunResult base =
            platform.runAtPState(w, config().pstates.maxIndex());
        auto ps = makePs(0.8);
        const RunResult r = platform.run(w, ps);
        return 1.0 - r.trueEnergyJ / base.trueEnergyJ;
    };
    // Fig 10's ordering: swim (memory) saves much more than sixtrack
    // (core).
    EXPECT_GT(energy_saving("swim"), energy_saving("sixtrack") + 0.05);
}

TEST_F(IntegrationTest, ArtAndMcfViolateTheFloor)
{
    // Section IV-B.2: the in-between workloads art and mcf exceed the
    // allowed 20% loss at the 80% floor with the trained exponent.
    Platform platform(config());
    for (const char *name : {"art", "mcf"}) {
        const Workload w = specWorkload(name, config().core, 4.0);
        const RunResult base =
            platform.runAtPState(w, config().pstates.maxIndex());
        auto ps = makePs(0.8);
        const RunResult r = platform.run(w, ps);
        const double reduction = 1.0 - base.seconds / r.seconds;
        EXPECT_GT(reduction, 0.20) << name;
    }
}

TEST_F(IntegrationTest, LowerExponentFixesMcf)
{
    // The paper's re-run with e = 0.59: mcf's reduction returns within
    // the allowed 20%.
    Platform platform(config());
    const Workload w = specWorkload("mcf", config().core, 4.0);
    const RunResult base =
        platform.runAtPState(w, config().pstates.maxIndex());
    PowerSave ps(config().pstates,
                 PerfEstimator(models().perf.threshold,
                               PerfEstimator::AlternateExponent),
                 PsConfig{0.8});
    const RunResult r = platform.run(w, ps);
    const double reduction = 1.0 - base.seconds / r.seconds;
    EXPECT_LT(reduction, 0.20 + 0.03);
}

TEST_F(IntegrationTest, GalgelIsHardForPm)
{
    // galgel's bursts exceed what the DPC model predicts; PM shows a
    // visible (if bounded) violation fraction at a mid limit, and the
    // measured-power feedback variant reduces it.
    Platform platform(config());
    const Workload galgel = specWorkload("galgel", config().core, 4.0);
    const double limit = 13.5;

    auto pm = makePm(limit);
    const RunResult plain = platform.run(galgel, pm);
    const double plain_over =
        plain.trace.fractionOverLimit(limit, 10);

    PmFeedback pmf(models().powerEstimator(config().pstates),
                   PmConfig{.powerLimitW = limit});
    const RunResult fb = platform.run(galgel, pmf);
    const double fb_over = fb.trace.fractionOverLimit(limit, 10);

    EXPECT_LE(fb_over, plain_over + 1e-9);
}

TEST_F(IntegrationTest, PmWithPaperCoefficientsAlsoWorks)
{
    // The governor is model-agnostic: the published Table II model
    // drives the same platform acceptably.
    Platform platform(config());
    PerformanceMaximizer pm(PowerEstimator::paperPentiumM(),
                            PmConfig{.powerLimitW = 14.5});
    const Workload w = specWorkload("gzip", config().core, 3.0);
    const RunResult r = platform.run(w, pm);
    EXPECT_TRUE(r.finished);
    EXPECT_LT(r.trace.fractionOverLimit(15.5, 10), 0.05);
}

TEST_F(IntegrationTest, TighterLimitsCostMorePerformance)
{
    Platform platform(config());
    const Workload w = specWorkload("crafty", config().core, 3.0);
    double prev_seconds = 0.0;
    for (double limit : {17.5, 14.5, 12.5, 10.5}) {
        auto pm = makePm(limit);
        const RunResult r = platform.run(w, pm);
        EXPECT_GE(r.seconds, prev_seconds * 0.999) << limit;
        prev_seconds = r.seconds;
    }
}

TEST_F(IntegrationTest, LowerFloorsSaveMoreEnergy)
{
    Platform platform(config());
    const Workload w = specWorkload("gzip", config().core, 3.0);
    double prev_energy = 1e18;
    for (double floor : {0.8, 0.6, 0.4, 0.2}) {
        auto ps = makePs(floor);
        const RunResult r = platform.run(w, ps);
        EXPECT_LE(r.trueEnergyJ, prev_energy * 1.001) << floor;
        prev_energy = r.trueEnergyJ;
    }
}

TEST_F(IntegrationTest, FullSuitePmAdherenceExceptGalgel)
{
    // The paper's claim verbatim: "PM is able to enforce the power
    // limit for every benchmark except galgel."
    Platform platform(config());
    const auto suite = specSuite(config().core, 3.0);
    const double limit = 13.5;
    for (const auto &w : suite) {
        auto pm = makePm(limit);
        const RunResult r = platform.run(w, pm);
        const double over = r.trace.fractionOverLimit(limit, 10);
        if (w.name() == "galgel") {
            EXPECT_GT(over, 0.02) << "galgel should misbehave";
        } else {
            EXPECT_LT(over, 0.02) << w.name();
        }
    }
}

TEST_F(IntegrationTest, FullSuitePsFloorExceptArtAndMcf)
{
    // Fig 11's violator set: only art and mcf break the 80% floor.
    Platform platform(config());
    const auto suite = specSuite(config().core, 3.0);
    for (const auto &w : suite) {
        const RunResult base =
            platform.runAtPState(w, config().pstates.maxIndex());
        auto ps = makePs(0.8);
        const RunResult r = platform.run(w, ps);
        const double perf = base.seconds / r.seconds;
        if (w.name() == "art" || w.name() == "mcf") {
            EXPECT_LT(perf, 0.80) << w.name()
                                  << " should violate the floor";
        } else {
            EXPECT_GT(perf, 0.80 - 0.035) << w.name();
        }
    }
}

} // namespace
} // namespace aapm
