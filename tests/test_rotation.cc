/**
 * @file
 * Tests for PMU counter rotation.
 */

#include <gtest/gtest.h>

#include "cpu/core_model.hh"
#include "pmu/rotation.hh"

namespace aapm
{
namespace
{

EventTotals
interval()
{
    EventTotals e;
    e.cycles = 1000.0;
    e.instructionsRetired = 700.0;
    e.instructionsDecoded = 900.0;
    e.dcuMissOutstanding = 250.0;
    e.fpOps = 100.0;
    return e;
}

TEST(RotationTest, CyclesThroughEvents)
{
    Pmu pmu;
    RotatingCounter rot(1, {PmuEvent::InstructionsDecoded,
                            PmuEvent::DcuMissOutstanding,
                            PmuEvent::FpOps});
    rot.start(pmu);
    EXPECT_EQ(rot.active(), PmuEvent::InstructionsDecoded);

    pmu.absorb(interval());
    rot.tick(pmu, 1000);
    EXPECT_EQ(rot.active(), PmuEvent::DcuMissOutstanding);
    EXPECT_NEAR(rot.rate(PmuEvent::InstructionsDecoded), 0.9, 1e-9);
    EXPECT_TRUE(std::isnan(rot.rate(PmuEvent::FpOps)));

    pmu.absorb(interval());
    rot.tick(pmu, 1000);
    EXPECT_NEAR(rot.rate(PmuEvent::DcuMissOutstanding), 0.25, 1e-9);

    pmu.absorb(interval());
    rot.tick(pmu, 1000);
    EXPECT_NEAR(rot.rate(PmuEvent::FpOps), 0.1, 1e-9);
    // Back to the first event.
    EXPECT_EQ(rot.active(), PmuEvent::InstructionsDecoded);
}

TEST(RotationTest, AgesTrackStaleness)
{
    Pmu pmu;
    RotatingCounter rot(0, {PmuEvent::InstructionsRetired,
                            PmuEvent::FpOps});
    rot.start(pmu);
    pmu.absorb(interval());
    rot.tick(pmu, 1000);
    EXPECT_EQ(rot.age(PmuEvent::InstructionsRetired), 0u);
    pmu.absorb(interval());
    rot.tick(pmu, 1000);
    EXPECT_EQ(rot.age(PmuEvent::InstructionsRetired), 1u);
    EXPECT_EQ(rot.age(PmuEvent::FpOps), 0u);
}

TEST(RotationTest, SingleEventDegeneratesToPlainCounter)
{
    Pmu pmu;
    RotatingCounter rot(0, {PmuEvent::InstructionsRetired});
    rot.start(pmu);
    for (int i = 0; i < 3; ++i) {
        pmu.absorb(interval());
        rot.tick(pmu, 1000);
        EXPECT_NEAR(rot.rate(PmuEvent::InstructionsRetired), 0.7,
                    1e-9);
    }
}

TEST(RotationTest, ZeroCycleIntervalSkipsUpdate)
{
    Pmu pmu;
    RotatingCounter rot(0, {PmuEvent::FpOps,
                            PmuEvent::InstructionsRetired});
    rot.start(pmu);
    rot.tick(pmu, 0);   // stalled interval: no rate recorded
    EXPECT_TRUE(std::isnan(rot.rate(PmuEvent::FpOps)));
}

TEST(RotationTest, ErrorsOnMisuse)
{
    EXPECT_THROW(RotatingCounter(0, {}), std::runtime_error);
    EXPECT_THROW(RotatingCounter(5, {PmuEvent::FpOps}),
                 std::runtime_error);
    Pmu pmu;
    RotatingCounter rot(0, {PmuEvent::FpOps});
    EXPECT_THROW(rot.tick(pmu, 100), std::logic_error);   // no start()
    rot.start(pmu);
    EXPECT_THROW(rot.rate(PmuEvent::L2Requests), std::runtime_error);
}

} // namespace
} // namespace aapm
