/**
 * @file
 * Tests for the governors' decision logic in isolation: PM's
 * asymmetric control and guardband, PS's floor arithmetic, the static
 * and demand-based baselines, and the feedback variant.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mgmt/demand_based.hh"
#include "mgmt/performance_maximizer.hh"
#include "mgmt/pm_feedback.hh"
#include "mgmt/power_save.hh"
#include "mgmt/static_clock.hh"
#include "pmu/pmu.hh"

namespace aapm
{
namespace
{

MonitorSample
sampleWithDpc(double dpc, size_t pstate)
{
    MonitorSample s;
    s.intervalSeconds = 0.01;
    s.cycles = 20'000'000;
    s.dpc = dpc;
    s.pstate = pstate;
    return s;
}

MonitorSample
sampleWithIpc(double ipc, double dcu, size_t pstate)
{
    MonitorSample s;
    s.intervalSeconds = 0.01;
    s.cycles = 20'000'000;
    s.ipc = ipc;
    s.dcuPerCycle = dcu;
    s.pstate = pstate;
    return s;
}

PerformanceMaximizer
makePm(double limit, size_t window = 10)
{
    PmConfig cfg;
    cfg.powerLimitW = limit;
    cfg.guardbandW = 0.5;
    cfg.raiseWindow = window;
    return PerformanceMaximizer(PowerEstimator::paperPentiumM(), cfg);
}

TEST(PmTest, ConfiguresOneCounter)
{
    auto pm = makePm(17.5);
    Pmu pmu;
    pm.configureCounters(pmu);
    EXPECT_EQ(*pmu.slotEvent(0), PmuEvent::InstructionsDecoded);
    EXPECT_FALSE(pmu.slotEvent(1).has_value());
}

TEST(PmTest, HighLimitAllowsTopState)
{
    auto pm = makePm(30.0);
    EXPECT_EQ(pm.decide(sampleWithDpc(1.0, 7), 7), 7u);
}

TEST(PmTest, LowersImmediately)
{
    // At 17.5 W with Table II, DPC = 2.0 predicts 2.93*2+12.11+0.5 =
    // 18.48 W at 2000 MHz -> must drop on the very first sample.
    auto pm = makePm(17.5);
    const size_t next = pm.decide(sampleWithDpc(2.0, 7), 7);
    EXPECT_LT(next, 7u);
}

TEST(PmTest, ChoosesHighestSafeState)
{
    auto pm = makePm(17.5);
    // DPC 2.0 at 2000: projected DPC at 1800 = 2.0*2000/1800 = 2.22,
    // est = 2.36*2.22 + 10.18 + 0.5 = 15.92 <= 17.5 -> 1800 is safe.
    EXPECT_EQ(pm.decide(sampleWithDpc(2.0, 7), 7), 6u);
}

TEST(PmTest, InfeasibleLimitFallsToSlowest)
{
    auto pm = makePm(1.0);
    EXPECT_EQ(pm.decide(sampleWithDpc(1.0, 7), 7), 0u);
}

TEST(PmTest, RaisesOnlyAfterFullWindow)
{
    auto pm = makePm(17.5, 10);
    // Low DPC at a low state: raising is safe, but needs 10 samples.
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(pm.decide(sampleWithDpc(0.2, 3), 3), 3u) << i;
    EXPECT_GT(pm.decide(sampleWithDpc(0.2, 3), 3), 3u);
}

TEST(PmTest, RaiseStreakResetsOnUnsafeSample)
{
    auto pm = makePm(17.5, 10);
    for (int i = 0; i < 9; ++i)
        pm.decide(sampleWithDpc(0.2, 3), 3);
    // A sample hot enough that no raise is safe interrupts the streak.
    pm.decide(sampleWithDpc(7.5, 3), 3);
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(pm.decide(sampleWithDpc(0.2, 3), 3), 3u) << i;
    EXPECT_GT(pm.decide(sampleWithDpc(0.2, 3), 3), 3u);
}

TEST(PmTest, RaiseTargetIsMostConservativeInStreak)
{
    auto pm = makePm(17.5, 3);
    // Mixed headroom during the streak: the raise goes to the minimum
    // safe target seen, not the latest.
    pm.decide(sampleWithDpc(0.1, 2), 2);    // very safe, target high
    pm.decide(sampleWithDpc(1.8, 2), 2);    // mildly safe, target lower
    const size_t next = pm.decide(sampleWithDpc(0.1, 2), 2);
    EXPECT_GT(next, 2u);
    // DPC 1.8 at 1000 MHz projected down: the safe state is what that
    // sample allows; verify we didn't jump to 7.
    EXPECT_LT(next, 7u);
}

TEST(PmTest, NewLimitTakesEffectImmediately)
{
    auto pm = makePm(30.0);
    EXPECT_EQ(pm.decide(sampleWithDpc(2.0, 7), 7), 7u);
    pm.setPowerLimit(14.5);
    EXPECT_LT(pm.decide(sampleWithDpc(2.0, 7), 7), 7u);
    EXPECT_DOUBLE_EQ(pm.powerLimit(), 14.5);
}

TEST(PmTest, GuardbandShrinksHeadroom)
{
    PmConfig tight;
    tight.powerLimitW = 18.5;
    tight.guardbandW = 0.0;
    PmConfig guarded = tight;
    guarded.guardbandW = 1.0;
    PerformanceMaximizer a(PowerEstimator::paperPentiumM(), tight);
    PerformanceMaximizer b(PowerEstimator::paperPentiumM(), guarded);
    // est at 2000 for DPC 2.0 = 17.97: fits without guardband only.
    EXPECT_EQ(a.decide(sampleWithDpc(2.0, 7), 7), 7u);
    EXPECT_LT(b.decide(sampleWithDpc(2.0, 7), 7), 7u);
}

TEST(PmTest, MissingDpcCounterPanics)
{
    auto pm = makePm(17.5);
    MonitorSample s;
    s.pstate = 7;
    EXPECT_THROW(pm.decide(s, 7), std::logic_error);
}

TEST(PmTest, RejectsBadConfig)
{
    PmConfig bad;
    bad.powerLimitW = -5.0;
    EXPECT_THROW(
        PerformanceMaximizer(PowerEstimator::paperPentiumM(), bad),
        std::runtime_error);
    EXPECT_THROW(makePm(17.5).setPowerLimit(0.0), std::runtime_error);
}

PowerSave
makePs(double floor)
{
    return PowerSave(PStateTable::pentiumM(),
                     PerfEstimator(1.21, 0.81), {floor});
}

TEST(PsTest, ConfiguresBothCounters)
{
    auto ps = makePs(0.8);
    Pmu pmu;
    ps.configureCounters(pmu);
    EXPECT_EQ(*pmu.slotEvent(0), PmuEvent::InstructionsRetired);
    EXPECT_EQ(*pmu.slotEvent(1), PmuEvent::DcuMissOutstanding);
}

TEST(PsTest, CoreBoundWorkloadMapsFloorToFrequency)
{
    // Core-bound: perf ~ f, so floor 0.8 -> lowest f with f >= 0.8*fmax
    // = 1600 MHz (index 5).
    auto ps = makePs(0.8);
    EXPECT_EQ(ps.decide(sampleWithIpc(1.5, 0.1, 7), 7), 5u);
    // Floor 0.4 -> 800 MHz (index 1).
    auto ps2 = makePs(0.4);
    EXPECT_EQ(ps2.decide(sampleWithIpc(1.5, 0.1, 7), 7), 1u);
}

TEST(PsTest, MemoryBoundWorkloadDropsTo800At80Floor)
{
    // With e = 0.81: 600 MHz projects below an 80% floor, 800 MHz just
    // above — the paper's discretization example.
    auto ps = makePs(0.8);
    EXPECT_EQ(ps.decide(sampleWithIpc(0.3, 2.0, 7), 7), 1u);
}

TEST(PsTest, MemoryBoundWorkloadHits600AtLowerFloors)
{
    auto ps = makePs(0.6);
    EXPECT_EQ(ps.decide(sampleWithIpc(0.3, 2.0, 7), 7), 0u);
}

TEST(PsTest, Floor100StaysAtTop)
{
    auto ps = makePs(1.0);
    EXPECT_EQ(ps.decide(sampleWithIpc(1.2, 0.1, 7), 7), 7u);
}

TEST(PsTest, DecisionWorksFromLowCurrentState)
{
    // Classification and projection happen from the current state.
    auto ps = makePs(0.8);
    // Core-bound at 600 MHz: must climb to >= 1600.
    EXPECT_EQ(ps.decide(sampleWithIpc(1.5, 0.1, 0), 0), 5u);
}

TEST(PsTest, FloorChangeTakesEffect)
{
    auto ps = makePs(0.8);
    EXPECT_EQ(ps.decide(sampleWithIpc(1.5, 0.1, 7), 7), 5u);
    ps.setPerformanceFloor(0.2);
    EXPECT_EQ(ps.decide(sampleWithIpc(1.5, 0.1, 7), 7), 0u);
    EXPECT_DOUBLE_EQ(ps.performanceFloor(), 0.2);
}

TEST(PsTest, RejectsBadFloor)
{
    EXPECT_THROW(makePs(0.0), std::runtime_error);
    EXPECT_THROW(makePs(1.5), std::runtime_error);
    EXPECT_THROW(makePs(0.8).setPerformanceFloor(-1.0),
                 std::runtime_error);
}

TEST(PsTest, MissingCountersPanic)
{
    auto ps = makePs(0.8);
    MonitorSample s;
    s.pstate = 7;
    EXPECT_THROW(ps.decide(s, 7), std::logic_error);
}

TEST(StaticClockTest, AlwaysReturnsPinnedState)
{
    StaticClock gov(4);
    MonitorSample s;
    EXPECT_EQ(gov.decide(s, 0), 4u);
    EXPECT_EQ(gov.decide(s, 7), 4u);
    EXPECT_EQ(gov.pstate(), 4u);
}

TEST(StaticClockTest, ChooseForLimitMatchesPaperTableIV)
{
    // Paper Table III worst-case powers per p-state.
    const std::vector<double> worst = {3.86, 5.21, 6.56, 8.16,
                                       10.16, 12.46, 15.29, 17.78};
    const PStateTable t = PStateTable::pentiumM();
    // Paper Table IV: limit -> static frequency.
    const std::vector<std::pair<double, double>> expect = {
        {17.5, 1800.0}, {16.5, 1800.0}, {15.5, 1800.0}, {14.5, 1600.0},
        {13.5, 1600.0}, {12.5, 1600.0}, {11.5, 1400.0}, {10.5, 1400.0},
    };
    for (const auto &[limit, freq] : expect) {
        const size_t idx = StaticClock::chooseForLimit(worst, limit);
        EXPECT_DOUBLE_EQ(t[idx].freqMhz, freq) << limit;
    }
}

TEST(StaticClockTest, InfeasibleLimitWarnsAndUsesSlowest)
{
    const std::vector<double> worst = {3.86, 5.21};
    EXPECT_EQ(StaticClock::chooseForLimit(worst, 2.0), 0u);
}

TEST(DbsTest, FullLoadPinsMaxFrequency)
{
    // The motivating observation for PS: utilization-driven DVFS never
    // saves anything on an always-busy workload.
    DemandBasedSwitching dbs(PStateTable::pentiumM());
    MonitorSample s;
    s.utilization = 1.0;
    size_t state = 3;
    for (int i = 0; i < 5; ++i)
        state = dbs.decide(s, state);
    EXPECT_EQ(state, 7u);
}

TEST(DbsTest, IdleStepsDownGradually)
{
    DemandBasedSwitching dbs(PStateTable::pentiumM());
    MonitorSample s;
    s.utilization = 0.1;
    EXPECT_EQ(dbs.decide(s, 7), 6u);
    EXPECT_EQ(dbs.decide(s, 1), 0u);
    EXPECT_EQ(dbs.decide(s, 0), 0u);
}

TEST(DbsTest, MidUtilizationHolds)
{
    DemandBasedSwitching dbs(PStateTable::pentiumM());
    MonitorSample s;
    s.utilization = 0.5;
    EXPECT_EQ(dbs.decide(s, 4), 4u);
}

TEST(DbsTest, RejectsInvertedThresholds)
{
    DbsConfig cfg;
    cfg.upThreshold = 0.2;
    cfg.downThreshold = 0.5;
    EXPECT_THROW(DemandBasedSwitching(PStateTable::pentiumM(), cfg),
                 std::runtime_error);
}

TEST(PmFeedbackTest, RatioStartsAtUnity)
{
    PmFeedback pm(PowerEstimator::paperPentiumM(),
                  {.powerLimitW = 17.5});
    EXPECT_DOUBLE_EQ(pm.correctionRatio(), 1.0);
}

TEST(PmFeedbackTest, LearnsHotWorkload)
{
    // A workload measuring hotter than predicted pushes the ratio up,
    // making PM-F throttle where plain PM would not.
    PmFeedback pmf(PowerEstimator::paperPentiumM(),
                   {.powerLimitW = 17.5});
    auto pm = makePm(17.5);

    MonitorSample s = sampleWithDpc(1.5, 7);
    // Table II estimate: 2.93*1.5+12.11 = 16.5; measured runs 2 W hot.
    s.measuredPowerW = 18.5;
    size_t fb_state = 7;
    for (int i = 0; i < 20; ++i)
        fb_state = pmf.decide(s, fb_state);
    EXPECT_GT(pmf.correctionRatio(), 1.05);
    EXPECT_LT(fb_state, 7u);
    // Plain PM keeps trusting the model (16.5 + 0.5 < 17.5).
    EXPECT_EQ(pm.decide(s, 7), 7u);
}

TEST(PmFeedbackTest, RatioClamped)
{
    PmFeedbackConfig fb;
    fb.ratioAlpha = 1.0;
    fb.ratioMin = 0.9;
    fb.ratioMax = 1.2;
    PmFeedback pmf(PowerEstimator::paperPentiumM(),
                   {.powerLimitW = 17.5}, fb);
    MonitorSample s = sampleWithDpc(1.0, 7);
    s.measuredPowerW = 40.0;   // wildly hot
    pmf.decide(s, 7);
    EXPECT_LE(pmf.correctionRatio(), 1.2);
}

TEST(PmFeedbackTest, ResetRestoresUnity)
{
    PmFeedback pmf(PowerEstimator::paperPentiumM(),
                   {.powerLimitW = 17.5});
    MonitorSample s = sampleWithDpc(1.0, 7);
    s.measuredPowerW = 20.0;
    pmf.decide(s, 7);
    pmf.reset();
    EXPECT_DOUBLE_EQ(pmf.correctionRatio(), 1.0);
}

TEST(PmFeedbackTest, WithoutMeasurementBehavesLikePm)
{
    PmFeedback pmf(PowerEstimator::paperPentiumM(),
                   {.powerLimitW = 17.5});
    auto pm = makePm(17.5);
    const MonitorSample s = sampleWithDpc(2.0, 7);   // no measuredPowerW
    EXPECT_EQ(pmf.decide(s, 7), pm.decide(s, 7));
}

} // namespace
} // namespace aapm
