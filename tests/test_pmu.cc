/**
 * @file
 * Tests for the PMU model: the two-programmable-counter constraint,
 * event selection, and the free-running cycle counter.
 */

#include <gtest/gtest.h>

#include "cpu/core_model.hh"
#include "pmu/events.hh"
#include "pmu/pmu.hh"

namespace aapm
{
namespace
{

EventTotals
someEvents()
{
    EventTotals e;
    e.cycles = 1000.0;
    e.instructionsRetired = 800.0;
    e.instructionsDecoded = 1040.0;
    e.dcuMissOutstanding = 300.0;
    e.resourceStalls = 120.0;
    e.l2Requests = 40.0;
    e.busMemoryRequests = 12.0;
    e.fpOps = 200.0;
    return e;
}

TEST(PmuEvents, NamesAreDistinct)
{
    for (size_t i = 0; i < NumPmuEvents; ++i) {
        for (size_t j = i + 1; j < NumPmuEvents; ++j) {
            EXPECT_STRNE(pmuEventName(static_cast<PmuEvent>(i)),
                         pmuEventName(static_cast<PmuEvent>(j)));
        }
    }
}

TEST(PmuEvents, ValueExtraction)
{
    const EventTotals e = someEvents();
    EXPECT_DOUBLE_EQ(
        pmuEventValue(e, PmuEvent::InstructionsRetired), 800.0);
    EXPECT_DOUBLE_EQ(
        pmuEventValue(e, PmuEvent::InstructionsDecoded), 1040.0);
    EXPECT_DOUBLE_EQ(
        pmuEventValue(e, PmuEvent::DcuMissOutstanding), 300.0);
    EXPECT_DOUBLE_EQ(pmuEventValue(e, PmuEvent::ResourceStalls), 120.0);
    EXPECT_DOUBLE_EQ(pmuEventValue(e, PmuEvent::L2Requests), 40.0);
    EXPECT_DOUBLE_EQ(
        pmuEventValue(e, PmuEvent::BusMemoryRequests), 12.0);
    EXPECT_DOUBLE_EQ(pmuEventValue(e, PmuEvent::FpOps), 200.0);
}

TEST(Pmu, UnconfiguredSlotsCountNothing)
{
    Pmu pmu;
    pmu.absorb(someEvents());
    EXPECT_EQ(pmu.read(0), 0u);
    EXPECT_EQ(pmu.read(1), 0u);
    EXPECT_FALSE(pmu.slotEvent(0).has_value());
}

TEST(Pmu, ConfiguredSlotCounts)
{
    Pmu pmu;
    pmu.configure(0, PmuEvent::InstructionsDecoded);
    pmu.absorb(someEvents());
    pmu.absorb(someEvents());
    EXPECT_EQ(pmu.read(0), 2080u);
    EXPECT_EQ(*pmu.slotEvent(0), PmuEvent::InstructionsDecoded);
}

TEST(Pmu, CycleCounterAlwaysRuns)
{
    Pmu pmu;
    pmu.absorb(someEvents());
    EXPECT_EQ(pmu.readCycles(), 1000u);
    pmu.absorb(someEvents());
    EXPECT_EQ(pmu.readCycles(), 2000u);
}

TEST(Pmu, CyclesSinceLastDeltas)
{
    Pmu pmu;
    pmu.absorb(someEvents());
    EXPECT_EQ(pmu.cyclesSinceLast(), 1000u);
    pmu.absorb(someEvents());
    pmu.absorb(someEvents());
    EXPECT_EQ(pmu.cyclesSinceLast(), 2000u);
    EXPECT_EQ(pmu.cyclesSinceLast(), 0u);
}

TEST(Pmu, ReconfigureZerosTheSlot)
{
    // The paper's constraint: a 2-counter PMU cannot watch a third
    // event without losing one — reprogramming restarts the count.
    Pmu pmu;
    pmu.configure(0, PmuEvent::InstructionsRetired);
    pmu.absorb(someEvents());
    EXPECT_EQ(pmu.read(0), 800u);
    pmu.configure(0, PmuEvent::FpOps);
    EXPECT_EQ(pmu.read(0), 0u);
    pmu.absorb(someEvents());
    EXPECT_EQ(pmu.read(0), 200u);
}

TEST(Pmu, ReadAndClear)
{
    Pmu pmu;
    pmu.configure(1, PmuEvent::L2Requests);
    pmu.absorb(someEvents());
    EXPECT_EQ(pmu.readAndClear(1), 40u);
    EXPECT_EQ(pmu.read(1), 0u);
    pmu.absorb(someEvents());
    EXPECT_EQ(pmu.read(1), 40u);
}

TEST(Pmu, TwoSlotsIndependent)
{
    Pmu pmu;
    pmu.configure(0, PmuEvent::InstructionsRetired);
    pmu.configure(1, PmuEvent::DcuMissOutstanding);
    pmu.absorb(someEvents());
    EXPECT_EQ(pmu.read(0), 800u);
    EXPECT_EQ(pmu.read(1), 300u);
}

TEST(Pmu, OnlyTwoSlots)
{
    Pmu pmu;
    EXPECT_EQ(Pmu::NumSlots, 2u);
    EXPECT_THROW(pmu.configure(2, PmuEvent::FpOps),
                 std::runtime_error);
}

TEST(Pmu, FractionalEventsQuantizeOnRead)
{
    Pmu pmu;
    pmu.configure(0, PmuEvent::FpOps);
    EventTotals e;
    e.fpOps = 0.6;
    pmu.absorb(e);
    EXPECT_EQ(pmu.read(0), 0u);   // floor(0.6)
    pmu.absorb(e);
    EXPECT_EQ(pmu.read(0), 1u);   // floor(1.2)
}

} // namespace
} // namespace aapm
