/**
 * @file
 * Binary columnar trace tests: bit-identity of the binary record
 * stream against the JSONL reference (multi-block, multi-segment),
 * truncation detection at arbitrary cut points, the shared flush
 * thread, simulation invariance under tracing, and tracing with an
 * active fault plan (rejected/stuck actuations must round-trip).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "aapm.hh"

namespace
{

using namespace aapm;

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

RunOptions
traceOpts(IntervalTracer *tracer)
{
    RunOptions opts;
    opts.recordTrace = false;
    opts.tracer = tracer;
    return opts;
}

/** NaN-aware bitwise-equality for a trace field. */
bool
feq(double a, double b)
{
    return (std::isnan(a) && std::isnan(b)) || a == b;
}

/**
 * Every field of two parsed records, compared exactly.
 * `compare_events` covers the raw ev_* totals, which only the binary
 * format stores — the JSONL schema carries the derived true_ipc /
 * true_dpc instead, so a JSONL-vs-binary comparison skips them (the
 * derived ratios are still compared, bit-exactly).
 */
void
expectRecordsEqual(const IntervalRecord &a, const IntervalRecord &b,
                   size_t i, bool compare_events = true)
{
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.when, b.when);
    EXPECT_TRUE(feq(a.intervalSeconds, b.intervalSeconds));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_TRUE(feq(a.ipc, b.ipc));
    EXPECT_TRUE(feq(a.dpc, b.dpc));
    EXPECT_TRUE(feq(a.dcuPerCycle, b.dcuPerCycle));
    EXPECT_TRUE(feq(a.utilization, b.utilization));
    EXPECT_TRUE(feq(a.measuredW, b.measuredW));
    EXPECT_TRUE(feq(a.tempC, b.tempC));
    EXPECT_EQ(a.pstate, b.pstate);
    EXPECT_EQ(a.lastActuation, b.lastActuation);
    EXPECT_TRUE(feq(a.trueW, b.trueW));
    EXPECT_TRUE(feq(a.trueIpc, b.trueIpc));
    EXPECT_TRUE(feq(a.trueDpc, b.trueDpc));
    EXPECT_TRUE(feq(a.dieTempC, b.dieTempC));
    if (compare_events) {
        EXPECT_TRUE(feq(a.evCycles, b.evCycles));
        EXPECT_TRUE(feq(a.evRetired, b.evRetired));
        EXPECT_TRUE(feq(a.evDecoded, b.evDecoded));
    }
    EXPECT_EQ(a.predValid, b.predValid);
    EXPECT_TRUE(feq(a.predictedPowerW, b.predictedPowerW));
    EXPECT_TRUE(feq(a.projectedIpc, b.projectedIpc));
    EXPECT_EQ(a.memBoundClass, b.memBoundClass);
    EXPECT_EQ(a.decided, b.decided);
    EXPECT_EQ(a.decision, b.decision);
    EXPECT_EQ(a.actuation, b.actuation);
    EXPECT_EQ(a.stallTicks, b.stallTicks);
    EXPECT_EQ(a.fallback, b.fallback);
    EXPECT_EQ(a.blind, b.blind);
    EXPECT_EQ(a.substitutions, b.substitutions);
    EXPECT_TRUE(feq(a.idleS, b.idleS));
    EXPECT_EQ(a.cstate, b.cstate);
}

void
expectTracesEqual(const ParsedTrace &a, const ParsedTrace &b,
                  bool compare_events = true)
{
    EXPECT_EQ(a.meta.workload, b.meta.workload);
    EXPECT_EQ(a.meta.governor, b.meta.governor);
    EXPECT_EQ(a.meta.intervalTicks, b.meta.intervalTicks);
    EXPECT_EQ(a.meta.every, b.meta.every);
    EXPECT_EQ(a.meta.pstateCount, b.meta.pstateCount);
    EXPECT_EQ(a.meta.core, b.meta.core);
    EXPECT_EQ(a.meta.cores, b.meta.cores);
    EXPECT_EQ(a.endTick, b.endTick);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i)
        expectRecordsEqual(a.records[i], b.records[i], i,
                           compare_events);
}

/** One traced PM run; returns the headline results for invariance. */
RunResult
tracedRun(Platform &platform, const Workload &w,
          const PowerEstimator &power, IntervalTracer *tracer,
          const FaultPlan *plan = nullptr)
{
    PerformanceMaximizer pm(power, PmConfig{.powerLimitW = 14.5});
    RunOptions opts = traceOpts(tracer);
    if (plan != nullptr)
        opts.faultPlan = *plan;
    return platform.run(w, pm, opts);
}

// ------------------------------------------------------------------ //
//                  Binary vs JSONL record identity                   //
// ------------------------------------------------------------------ //

TEST(BinaryTrace, MatchesJsonlBitExactly)
{
    PlatformConfig config;
    Platform platform(config);
    const std::vector<Workload> suite = specSuite(config.core, 2.0);
    const PowerEstimator power = PowerEstimator::paperPentiumM();
    const std::string jpath = tempPath("bt_ref.jsonl");
    const std::string bpath = tempPath("bt_ref.bin");

    {
        JsonlTraceSink js(jpath);
        IntervalTracer jt(js, 1);
        tracedRun(platform, suite[0], power, &jt);
    }
    {
        // Seven records per block forces many blocks plus a partial
        // tail block, so every encoder path sees real data.
        BinaryTraceSink bs(bpath, nullptr, 7);
        IntervalTracer bt(bs, 1);
        tracedRun(platform, suite[0], power, &bt);
    }

    ParsedTrace pj, pb;
    ASSERT_TRUE(readTraceJsonl(jpath, pj));
    ASSERT_TRUE(readTraceBinary(bpath, pb));
    ASSERT_GT(pj.records.size(), 20u);
    expectTracesEqual(pj, pb, /*compare_events=*/false);
}

TEST(BinaryTrace, SamplingStrideReconstructsIndices)
{
    PlatformConfig config;
    Platform platform(config);
    const std::vector<Workload> suite = specSuite(config.core, 2.0);
    const PowerEstimator power = PowerEstimator::paperPentiumM();
    const std::string path = tempPath("bt_stride.bin");

    {
        BinaryTraceSink sink(path, nullptr, 5);
        IntervalTracer tracer(sink, 4); // every 4th interval
        tracedRun(platform, suite[0], power, &tracer);
    }
    ParsedTrace parsed;
    ASSERT_TRUE(readTraceBinary(path, parsed));
    EXPECT_EQ(parsed.meta.every, 4u);
    ASSERT_FALSE(parsed.records.empty());
    for (size_t i = 0; i < parsed.records.size(); ++i)
        EXPECT_EQ(parsed.records[i].index, 4u * i);
}

TEST(BinaryTrace, MultiSegmentFileReadsFirstSegment)
{
    PlatformConfig config;
    Platform platform(config);
    const std::vector<Workload> suite = specSuite(config.core, 2.0);
    const PowerEstimator power = PowerEstimator::paperPentiumM();
    const std::string path = tempPath("bt_multiseg.bin");

    uint64_t first_records = 0;
    {
        BinaryTraceSink sink(path, nullptr, 16);
        IntervalTracer tracer(sink, 1);
        tracedRun(platform, suite[0], power, &tracer);
        sink.sync();
        ParsedTrace mid;
        ASSERT_TRUE(readTraceBinary(path, mid));
        first_records = mid.records.size();
        // Second run through the same sink appends a second segment.
        tracedRun(platform, suite[1], power, &tracer);
    }
    ParsedTrace parsed;
    ASSERT_TRUE(readTraceBinary(path, parsed));
    EXPECT_EQ(parsed.records.size(), first_records);
    EXPECT_EQ(parsed.meta.workload, suite[0].name());
}

TEST(BinaryTrace, SharedFlushThreadServesManySinks)
{
    PlatformConfig config;
    Platform platform(config);
    const std::vector<Workload> suite = specSuite(config.core, 2.0);
    const PowerEstimator power = PowerEstimator::paperPentiumM();

    TraceFlushThread flush;
    std::vector<std::string> paths;
    std::vector<std::unique_ptr<BinaryTraceSink>> sinks;
    for (int i = 0; i < 4; ++i) {
        paths.push_back(tempPath(
            ("bt_shared" + std::to_string(i) + ".bin").c_str()));
        sinks.push_back(
            std::make_unique<BinaryTraceSink>(paths.back(), &flush, 8));
    }
    for (int i = 0; i < 4; ++i) {
        IntervalTracer tracer(*sinks[i], 1);
        tracedRun(platform, suite[0], power, &tracer);
    }
    sinks.clear(); // drains through the shared thread
    ParsedTrace ref;
    ASSERT_TRUE(readTraceBinary(paths[0], ref));
    ASSERT_FALSE(ref.records.empty());
    for (int i = 1; i < 4; ++i) {
        ParsedTrace parsed;
        ASSERT_TRUE(readTraceBinary(paths[i], parsed));
        expectTracesEqual(ref, parsed);
    }
}

// ------------------------------------------------------------------ //
//                       Truncation detection                         //
// ------------------------------------------------------------------ //

TEST(BinaryTrace, TruncationIsAlwaysDetected)
{
    PlatformConfig config;
    Platform platform(config);
    const std::vector<Workload> suite = specSuite(config.core, 2.0);
    const PowerEstimator power = PowerEstimator::paperPentiumM();
    const std::string path = tempPath("bt_trunc_src.bin");
    {
        BinaryTraceSink sink(path, nullptr, 7);
        IntervalTracer tracer(sink, 1);
        tracedRun(platform, suite[0], power, &tracer);
    }

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<char> bytes(static_cast<size_t>(size));
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);

    const std::string cut_path = tempPath("bt_trunc_cut.bin");
    for (long cut : {size - 1, size - 24, size / 2, 100L, 4L}) {
        std::FILE *g = std::fopen(cut_path.c_str(), "wb");
        ASSERT_NE(g, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1,
                              static_cast<size_t>(cut), g),
                  static_cast<size_t>(cut));
        std::fclose(g);
        ParsedTrace parsed;
        EXPECT_FALSE(readTraceBinary(cut_path, parsed))
            << "accepted a file cut at " << cut << " of " << size;
    }
    // The untouched original still reads.
    ParsedTrace whole;
    EXPECT_TRUE(readTraceBinary(path, whole));
}

TEST(BinaryTrace, MissingFileAndBadMagicAreRejected)
{
    ParsedTrace parsed;
    EXPECT_FALSE(readTraceBinary(tempPath("bt_no_such.bin"), parsed));

    const std::string garbled = tempPath("bt_garbled.bin");
    std::FILE *f = std::fopen(garbled.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a trace file at all, promise";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    EXPECT_FALSE(readTraceBinary(garbled, parsed));
}

// ------------------------------------------------------------------ //
//                Simulation invariance under tracing                 //
// ------------------------------------------------------------------ //

TEST(BinaryTrace, SimulationBitIdenticalWithTracingOnOrOff)
{
    PlatformConfig config;
    Platform platform(config);
    const std::vector<Workload> suite = specSuite(config.core, 2.0);
    const PowerEstimator power = PowerEstimator::paperPentiumM();

    const RunResult plain =
        tracedRun(platform, suite[0], power, nullptr);

    BinaryTraceSink sink(tempPath("bt_invariance.bin"));
    IntervalTracer tracer(sink, 1);
    const RunResult traced =
        tracedRun(platform, suite[0], power, &tracer);

    EXPECT_EQ(plain.seconds, traced.seconds);
    EXPECT_EQ(plain.instructions, traced.instructions);
    EXPECT_EQ(plain.trueEnergyJ, traced.trueEnergyJ);
    EXPECT_EQ(plain.measuredEnergyJ, traced.measuredEnergyJ);
}

// ------------------------------------------------------------------ //
//                    Tracing under fault plans                       //
// ------------------------------------------------------------------ //

TEST(BinaryTrace, InertFaultPlanKeepsTracedRunBitIdentical)
{
    PlatformConfig config;
    Platform platform(config);
    const std::vector<Workload> suite = specSuite(config.core, 2.0);
    const PowerEstimator power = PowerEstimator::paperPentiumM();

    const std::string a_path = tempPath("bt_inert_a.bin");
    const std::string b_path = tempPath("bt_inert_b.bin");
    RunResult no_plan, inert;
    {
        BinaryTraceSink sink(a_path);
        IntervalTracer tracer(sink, 1);
        no_plan = tracedRun(platform, suite[0], power, &tracer);
    }
    {
        // All probabilities zero and nothing scheduled: inactive, so
        // no injector is built and the run must not diverge.
        const FaultPlan plan;
        ASSERT_FALSE(plan.active());
        BinaryTraceSink sink(b_path);
        IntervalTracer tracer(sink, 1);
        inert = tracedRun(platform, suite[0], power, &tracer, &plan);
    }
    EXPECT_EQ(no_plan.seconds, inert.seconds);
    EXPECT_EQ(no_plan.instructions, inert.instructions);
    EXPECT_EQ(no_plan.trueEnergyJ, inert.trueEnergyJ);

    ParsedTrace pa, pb;
    ASSERT_TRUE(readTraceBinary(a_path, pa));
    ASSERT_TRUE(readTraceBinary(b_path, pb));
    expectTracesEqual(pa, pb);
}

TEST(BinaryTrace, FaultedActuationsRoundTripThroughBinary)
{
    PlatformConfig config;
    Platform platform(config);
    const std::vector<Workload> suite = specSuite(config.core, 2.0);
    const PowerEstimator power = PowerEstimator::paperPentiumM();

    // A high reject rate keeps the governor's target unreached, so it
    // re-issues the write (and meets a fresh fault) interval after
    // interval — a low rate lets the first write land and the trace
    // never sees a denial again.
    FaultPlan plan;
    plan.dvfsRejectProb = 0.9;
    plan.dvfsStuckProb = 0.2;
    plan.dvfsStuckIntervals = 10;
    plan.seed = 99;
    ASSERT_TRUE(plan.active());

    const std::string jpath = tempPath("bt_fault.jsonl");
    const std::string bpath = tempPath("bt_fault.bin");
    {
        JsonlTraceSink js(jpath);
        IntervalTracer jt(js, 1);
        tracedRun(platform, suite[0], power, &jt, &plan);
    }
    {
        BinaryTraceSink bs(bpath, nullptr, 7);
        IntervalTracer bt(bs, 1);
        tracedRun(platform, suite[0], power, &bt, &plan);
    }

    ParsedTrace pj, pb;
    ASSERT_TRUE(readTraceJsonl(jpath, pj));
    ASSERT_TRUE(readTraceBinary(bpath, pb));
    expectTracesEqual(pj, pb, /*compare_events=*/false);

    // The plan must actually have bitten: denied actuations appear in
    // the trace, and each decode stays inside the DvfsOutcome domain
    // (the reader validates the range, so a parse proves it).
    size_t denied = 0;
    for (const IntervalRecord &r : pb.records) {
        if (r.actuation == DvfsOutcome::Rejected ||
            r.actuation == DvfsOutcome::Stuck ||
            r.lastActuation == DvfsOutcome::Rejected ||
            r.lastActuation == DvfsOutcome::Stuck)
            ++denied;
    }
    EXPECT_GT(denied, 0u);
}

TEST(BinaryTrace, SleepResidencyRoundTripsThroughBinary)
{
    // A run that actually sleeps: the idle_s / cstate columns carry
    // nonzero payloads and must survive both formats bit-exactly.
    PlatformConfig config;
    config.cstates =
        CStateLadder::parse("C1:0.4W:2us;C6:0.05W:150us", "test");
    Platform platform(config);
    const Workload duty = dutyCycledWorkload(
        "duty30", specWorkload("gzip", config.core, 1.0).phases()[0],
        0.3, 0.05, 0.3, config.core);
    const PowerEstimator power = PowerEstimator::paperPentiumM();

    auto run = [&](IntervalTracer *tracer) {
        IdleGovernor gov(std::make_unique<PerformanceMaximizer>(
                             power, PmConfig{.powerLimitW = 14.5}),
                         config.cstates);
        return platform.run(duty, gov, traceOpts(tracer));
    };

    const std::string jpath = tempPath("bt_idle.jsonl");
    const std::string bpath = tempPath("bt_idle.bin");
    {
        JsonlTraceSink js(jpath);
        IntervalTracer jt(js, 1);
        run(&jt);
    }
    RunResult res;
    {
        BinaryTraceSink bs(bpath, nullptr, 7);
        IntervalTracer bt(bs, 1);
        res = run(&bt);
    }
    ASSERT_GT(res.idle.sleepSeconds, 0.0);

    ParsedTrace pj, pb;
    ASSERT_TRUE(readTraceJsonl(jpath, pj));
    ASSERT_TRUE(readTraceBinary(bpath, pb));
    expectTracesEqual(pj, pb, /*compare_events=*/false);

    // The sleep shows up in the columns: some intervals spent time in
    // a deep state, and idle_s sums to the run's sleep total.
    double idleSum = 0.0;
    size_t deep = 0;
    for (const IntervalRecord &r : pb.records) {
        idleSum += r.idleS;
        deep += r.cstate > 0 ? 1 : 0;
    }
    EXPECT_GT(deep, 0u);
    EXPECT_NEAR(idleSum, res.idle.sleepSeconds, 1e-9);
    std::remove(jpath.c_str());
    std::remove(bpath.c_str());
}

// ------------------------------------------------------------------ //
//                      makeTraceSink dispatch                        //
// ------------------------------------------------------------------ //

TEST(BinaryTrace, MakeTraceSinkHonorsExplicitFormat)
{
    PlatformConfig config;
    Platform platform(config);
    const std::vector<Workload> suite = specSuite(config.core, 2.0);
    const PowerEstimator power = PowerEstimator::paperPentiumM();

    // ".dat" is not a recognized extension; the explicit format wins
    // and the result is a real binary trace.
    const std::string path = tempPath("bt_explicit.dat");
    {
        auto sink = makeTraceSink(path, TraceFormat::Binary);
        ASSERT_NE(sink->binary(), nullptr);
        IntervalTracer tracer(*sink, 1);
        tracedRun(platform, suite[0], power, &tracer);
    }
    ParsedTrace parsed;
    EXPECT_TRUE(readTraceBinary(path, parsed));
    EXPECT_FALSE(parsed.records.empty());

    // ".bin" auto-detects to the binary sink.
    auto bin = makeTraceSink(tempPath("bt_auto.bin"));
    EXPECT_NE(bin->binary(), nullptr);
    // Text formats expose no columnar capability.
    auto jsonl = makeTraceSink(tempPath("bt_auto.jsonl"));
    EXPECT_EQ(jsonl->binary(), nullptr);
}

} // namespace
