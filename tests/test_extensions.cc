/**
 * @file
 * Tests for the extension layers: clock throttling, idle/utilization
 * modeling, the demand-based-switching regime split, the predictive
 * thermal cap, and the model validator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"
#include "dvfs/throttle.hh"
#include "mgmt/demand_based.hh"
#include "mgmt/power_save.hh"
#include "mgmt/thermal_cap.hh"
#include "models/validator.hh"
#include "platform/experiment.hh"
#include "workload/spec_suite.hh"
#include "workload/synthetic.hh"

namespace aapm
{
namespace
{

// ---------------------------------------------------------------- //
//                        Clock throttling                           //
// ---------------------------------------------------------------- //

TEST(Throttle, TableShape)
{
    const PState base{2000.0, 1.34};
    const PStateTable t = throttleTable(base, 8);
    ASSERT_EQ(t.size(), 8u);
    EXPECT_DOUBLE_EQ(t[0].freqMhz, 250.0);
    EXPECT_DOUBLE_EQ(t[7].freqMhz, 2000.0);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_DOUBLE_EQ(t[i].voltage, 1.34);
}

TEST(Throttle, RejectsDegenerateTable)
{
    EXPECT_THROW(throttleTable({2000.0, 1.34}, 1), std::runtime_error);
}

TEST(Throttle, ExtendedPentiumM)
{
    const PStateTable t = pentiumMWithThrottling();
    ASSERT_EQ(t.size(), 14u);   // 6 throttle + 8 DVFS
    // Throttle states live below 600 MHz at the lowest voltage.
    for (size_t i = 0; i < 6; ++i) {
        EXPECT_LT(t[i].freqMhz, 600.0);
        EXPECT_DOUBLE_EQ(t[i].voltage, 0.998);
        EXPECT_TRUE(isThrottleState(t, i)) << i;
    }
    for (size_t i = 7; i < 14; ++i)
        EXPECT_FALSE(isThrottleState(t, i)) << i;
}

TEST(Throttle, ThrottlingSavesLessThanDvfsAtEqualFrequency)
{
    // Same effective frequency (1000 MHz): DVFS runs it at 1.100 V,
    // throttling at 1.340 V — throttling must burn more power.
    TruthPowerModel model;
    ActivityRates rates;
    rates.busyFrac = 0.9;
    rates.dpc = 1.5;
    const double dvfs_w = model.power(rates, {1000.0, 1.100});
    const double thr_w = model.power(rates, {1000.0, 1.340});
    EXPECT_GT(thr_w, dvfs_w * 1.2);
}

TEST(Throttle, GovernorsRunOnThrottleTables)
{
    // The whole stack is actuation-agnostic: PS on a throttle-only
    // menu still meets its floor.
    PlatformConfig config;
    config.pstates = throttleTable({2000.0, 1.34}, 8);
    config.initialPState = 7;
    Platform platform(config);
    Phase busy;
    busy.baseCpi = 0.8;
    busy.decodeRatio = 1.3;
    busy.memPerInstr = 0.3;
    const Workload w =
        steadyWorkload("core", busy, 2.0, config.core);
    const RunResult base = platform.runAtPState(w, 7);
    PowerSave ps(config.pstates, PerfEstimator(1.21, 0.81), {0.8});
    const RunResult r = platform.run(w, ps);
    const double perf = base.seconds / r.seconds;
    EXPECT_GT(perf, 0.75);
    // Throttling a core-bound workload at constant voltage saves
    // ~nothing (dynamic energy per instruction is unchanged and the
    // longer runtime leaks more) — the physics of why DVFS wins.
    EXPECT_NEAR(r.trueEnergyJ, base.trueEnergyJ,
                0.1 * base.trueEnergyJ);
}

// ---------------------------------------------------------------- //
//                      Idle & duty-cycled load                      //
// ---------------------------------------------------------------- //

TEST(Synthetic, IdlePhaseIsWallClockInvariant)
{
    CoreParams params;
    CoreModel core(params);
    const Phase idle = idlePhase(1.0, params);
    // Time per "instruction" identical at every frequency.
    const double t2 = core.cpi(idle, 2.0) / 2.0;
    const double t06 = core.cpi(idle, 0.6) / 0.6;
    EXPECT_NEAR(t2, t06, 1e-12);
}

TEST(Synthetic, IdlePhaseBurnsOnlyBaseline)
{
    CoreParams params;
    CoreModel core(params);
    TruthPowerModel power;
    const Phase idle = idlePhase(1.0, params);
    ExecChunk chunk;
    chunk.phase = &idle;
    chunk.freqGhz = 2.0;
    chunk.events = core.eventsFor(idle, 2.0, 1e6);
    const PState ps{2000.0, 1.34};
    EXPECT_DOUBLE_EQ(power.power(chunk, ps),
                     power.power(ActivityRates{}, ps));
}

TEST(Synthetic, DutyCycledWorkloadStructure)
{
    CoreParams params;
    const Phase busy = specWorkload("gzip", params, 1.0).phases()[0];
    const Workload w =
        dutyCycledWorkload("d50", busy, 0.5, 0.1, 2.0, params);
    ASSERT_EQ(w.phases().size(), 2u);
    EXPECT_FALSE(w.phases()[0].idle);
    EXPECT_TRUE(w.phases()[1].idle);
    EXPECT_EQ(w.repeats(), 20u);   // 2 s / 0.1 s periods
}

TEST(Synthetic, FullDutyHasNoIdlePhase)
{
    CoreParams params;
    Phase busy;
    busy.baseCpi = 1.0;
    const Workload w =
        dutyCycledWorkload("d100", busy, 1.0, 0.1, 1.0, params);
    ASSERT_EQ(w.phases().size(), 1u);
    EXPECT_FALSE(w.phases()[0].idle);
}

TEST(Synthetic, RejectsBadParameters)
{
    CoreParams params;
    Phase busy;
    EXPECT_THROW(dutyCycledWorkload("x", busy, 0.0, 0.1, 1.0, params),
                 std::runtime_error);
    EXPECT_THROW(dutyCycledWorkload("x", busy, 0.5, 0.0, 1.0, params),
                 std::runtime_error);
    EXPECT_THROW(idlePhase(-1.0, params), std::runtime_error);
}

TEST(Synthetic, PlatformReportsUtilization)
{
    PlatformConfig config;
    Platform platform(config);
    Phase busy;
    busy.baseCpi = 1.0;
    busy.decodeRatio = 1.2;
    busy.memPerInstr = 0.3;
    const Workload w = dutyCycledWorkload("d50", busy, 0.5, 0.01, 1.0,
                                          config.core);
    // Capture utilization through a probing governor.
    struct Probe : Governor
    {
        RunningStats util;
        const char *name() const override { return "probe"; }
        void configureCounters(Pmu &) override {}
        size_t
        decide(const MonitorSample &s, size_t current) override
        {
            util.add(s.utilization);
            return current;
        }
    } probe;
    platform.run(w, probe);
    EXPECT_NEAR(probe.util.mean(), 0.5, 0.08);
}

TEST(Synthetic, IdleTimeLowersAveragePower)
{
    PlatformConfig config;
    Platform platform(config);
    Phase busy;
    busy.baseCpi = 0.8;
    busy.decodeRatio = 1.4;
    busy.memPerInstr = 0.3;
    const Workload full =
        dutyCycledWorkload("d100", busy, 1.0, 0.1, 1.0, config.core);
    const Workload half =
        dutyCycledWorkload("d50", busy, 0.5, 0.1, 1.0, config.core);
    const RunResult rf = platform.runAtPState(full, 7);
    const RunResult rh = platform.runAtPState(half, 7);
    EXPECT_LT(rh.avgTruePowerW, rf.avgTruePowerW - 1.0);
}

TEST(DbsRegime, SavesOnlyWithIdleTime)
{
    PlatformConfig config;
    Platform platform(config);
    Phase busy;
    busy.baseCpi = 0.8;
    busy.decodeRatio = 1.3;
    busy.memPerInstr = 0.3;

    auto dbs_saving = [&](double duty) {
        const Workload w = dutyCycledWorkload("w", busy, duty, 0.1,
                                              2.0, config.core);
        const RunResult base = platform.runAtPState(w, 7);
        DemandBasedSwitching dbs(config.pstates);
        const RunResult r = platform.run(w, dbs);
        return 1.0 - r.trueEnergyJ / base.trueEnergyJ;
    };
    EXPECT_GT(dbs_saving(0.3), 0.05);           // plenty of idle
    EXPECT_NEAR(dbs_saving(1.0), 0.0, 0.01);    // full load: nothing
}

// ---------------------------------------------------------------- //
//                        Thermal capping                            //
// ---------------------------------------------------------------- //

ThermalCapConfig
capConfig(double cap_c, double r_th)
{
    ThermalCapConfig cfg;
    cfg.maxTempC = cap_c;
    cfg.rThermal = r_th;
    cfg.ambientC = 35.0;
    return cfg;
}

TEST(ThermalCapTest, PredictsSafeState)
{
    // Budget (68 C at R=2, ambient 35) allows 16.5 W steady. With
    // Table II at DPC 2: 2000 MHz predicts 17.97 W -> too hot; lower
    // states predict less.
    ThermalCap gov(PowerEstimator::paperPentiumM(),
                   capConfig(70.0, 2.0));
    MonitorSample s;
    s.dpc = 2.0;
    s.tempC = 40.0;
    s.pstate = 7;
    const size_t next = gov.decide(s, 7);
    EXPECT_LT(next, 7u);
}

TEST(ThermalCapTest, GenerousCoolingAllowsFullSpeed)
{
    ThermalCap gov(PowerEstimator::paperPentiumM(),
                   capConfig(90.0, 0.5));
    MonitorSample s;
    s.dpc = 2.0;
    s.tempC = 45.0;
    s.pstate = 7;
    EXPECT_EQ(gov.decide(s, 7), 7u);
}

TEST(ThermalCapTest, ReactiveBackstopOnHotDiode)
{
    // Even if the model thinks the state is fine, a diode at/over the
    // cap forces a step down.
    ThermalCap gov(PowerEstimator::paperPentiumM(),
                   capConfig(70.0, 0.5));
    MonitorSample s;
    s.dpc = 0.5;     // model sees a cool workload
    s.tempC = 71.0;  // reality disagrees
    s.pstate = 5;
    EXPECT_LT(gov.decide(s, 5), 5u);
}

TEST(ThermalCapTest, RaisesSlowly)
{
    ThermalCap gov(PowerEstimator::paperPentiumM(),
                   capConfig(90.0, 0.5));
    MonitorSample s;
    s.dpc = 0.5;
    s.tempC = 40.0;
    s.pstate = 3;
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(gov.decide(s, 3), 3u) << i;
    EXPECT_GT(gov.decide(s, 3), 3u);
}

TEST(ThermalCapTest, EndToEndKeepsTemperatureUnderCap)
{
    PlatformConfig config;
    config.thermal.rTh = 2.0;
    Platform platform(config);
    const TrainedModels models = trainModels(config);
    ThermalCapConfig cfg = capConfig(70.0, 2.0);
    ThermalCap gov(models.powerEstimator(config.pstates), cfg);
    // Long enough to pass the 16 s thermal time constant.
    const Workload crafty = specWorkload("crafty", config.core, 60.0);
    const RunResult r = platform.run(crafty, gov);
    double peak = 0.0;
    for (const auto &s : r.trace.samples())
        peak = std::max(peak, s.tempC);
    EXPECT_LE(peak, 70.0 + 0.5);
    // And the uncapped run would have exceeded it.
    const RunResult free = platform.runAtPState(crafty, 7);
    EXPECT_GT(free.finalTempC, 70.0);
}

TEST(ThermalCapTest, RejectsBadConfig)
{
    EXPECT_THROW(ThermalCap(PowerEstimator::paperPentiumM(),
                            capConfig(20.0, 1.0)),
                 std::runtime_error);
    ThermalCapConfig cfg = capConfig(70.0, -1.0);
    EXPECT_THROW(ThermalCap(PowerEstimator::paperPentiumM(), cfg),
                 std::runtime_error);
}

// ---------------------------------------------------------------- //
//                        Model validation                           //
// ---------------------------------------------------------------- //

TEST(ValidatorTest, PerfectModelScoresZero)
{
    PowerTrace trace;
    const PowerEstimator est = PowerEstimator::paperPentiumM();
    for (int i = 0; i < 100; ++i) {
        TraceSample s;
        s.pstateIndex = 7;
        s.dpc = 0.01 * i;
        s.measuredW = est.estimate(7, s.dpc);
        trace.add(s);
    }
    const PowerValidation v = validatePowerModel(trace, est);
    EXPECT_EQ(v.samples, 100u);
    EXPECT_NEAR(v.meanAbsErrorW, 0.0, 1e-9);
    EXPECT_NEAR(v.rmsErrorW, 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(v.underPredictedFrac, 0.0);
}

TEST(ValidatorTest, DetectsBiasVsSampleError)
{
    // Alternating +2/-2 W errors: zero mean, large per-sample error —
    // the paper's "program-average accuracy hides per-sample error".
    PowerTrace trace;
    const PowerEstimator est = PowerEstimator::paperPentiumM();
    for (int i = 0; i < 100; ++i) {
        TraceSample s;
        s.pstateIndex = 7;
        s.dpc = 1.0;
        s.measuredW =
            est.estimate(7, 1.0) + ((i % 2 == 0) ? 2.0 : -2.0);
        trace.add(s);
    }
    const PowerValidation v = validatePowerModel(trace, est);
    EXPECT_NEAR(v.meanErrorW, 0.0, 1e-9);
    EXPECT_NEAR(v.meanAbsErrorW, 2.0, 1e-9);
    EXPECT_TRUE(v.biasHidesSampleError());
    EXPECT_NEAR(v.underPredictedFrac, 0.5, 0.01);
}

TEST(ValidatorTest, GalgelUnderPredictionShowsUp)
{
    PlatformConfig config;
    Platform platform(config);
    const TrainedModels models = trainModels(config);
    const PowerEstimator est =
        models.powerEstimator(config.pstates);
    const Workload galgel = specWorkload("galgel", config.core, 3.0);
    const RunResult r = platform.runAtPState(galgel, 7);
    const PowerValidation v = validatePowerModel(r.trace, est);
    // galgel runs hotter than the model thinks, much of the time.
    EXPECT_LT(v.meanErrorW, -0.5);
    EXPECT_GT(v.underPredictedFrac, 0.3);
}

TEST(ValidatorTest, SteadyWorkloadsValidateTightly)
{
    PlatformConfig config;
    Platform platform(config);
    const TrainedModels models = trainModels(config);
    const PowerEstimator est =
        models.powerEstimator(config.pstates);
    for (const char *name : {"gzip", "swim", "sixtrack"}) {
        const Workload w = specWorkload(name, config.core, 2.0);
        const RunResult r = platform.runAtPState(w, 7);
        const PowerValidation v = validatePowerModel(r.trace, est);
        EXPECT_LT(v.meanAbsErrorW, 1.6) << name;
    }
}

TEST(ValidatorTest, EmptyTraceIsSafe)
{
    const PowerValidation v = validatePowerModel(
        PowerTrace{}, PowerEstimator::paperPentiumM());
    EXPECT_EQ(v.samples, 0u);
}

} // namespace
} // namespace aapm
