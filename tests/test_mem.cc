/**
 * @file
 * Unit and property tests for the memory substrate: cache geometry,
 * LRU behavior, write-back semantics, the stride prefetcher, DRAM
 * parameters and the two-level hierarchy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "mem/prefetcher.hh"

namespace aapm
{
namespace
{

CacheConfig
smallCache()
{
    // 4 sets x 2 ways x 64 B lines = 512 B.
    return {"test", 512, 64, 2, 1};
}

TEST(CacheConfigTest, NumSets)
{
    CacheConfig c{"c", 32 * 1024, 64, 8, 3};
    EXPECT_EQ(c.numSets(), 64u);
}

TEST(CacheConfigTest, RejectsNonPow2Line)
{
    CacheConfig c{"c", 512, 48, 2, 1};
    EXPECT_THROW(c.validate(), std::runtime_error);
}

TEST(CacheConfigTest, RejectsNonPow2Sets)
{
    CacheConfig c{"c", 3 * 64 * 2, 64, 2, 1};
    EXPECT_THROW(c.validate(), std::runtime_error);
}

TEST(CacheConfigTest, RejectsZeroWays)
{
    CacheConfig c{"c", 512, 64, 0, 1};
    EXPECT_THROW(c.validate(), std::runtime_error);
}

TEST(CacheTest, ColdMissThenHit)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x103F, false).hit);   // same line
    EXPECT_FALSE(cache.access(0x1040, false).hit);  // next line
}

TEST(CacheTest, LruEviction)
{
    Cache cache(smallCache());   // 2 ways
    // Three lines mapping to the same set (set stride = 4 lines).
    const uint64_t a = 0;
    const uint64_t b = 4 * 64;
    const uint64_t c = 8 * 64;
    cache.access(a, false);
    cache.access(b, false);
    cache.access(a, false);      // a most recent
    cache.access(c, false);      // evicts b (LRU)
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(CacheTest, WritebackOnDirtyEviction)
{
    Cache cache(smallCache());
    const uint64_t a = 0;
    const uint64_t b = 4 * 64;
    const uint64_t c = 8 * 64;
    cache.access(a, true);       // dirty
    cache.access(b, false);
    const auto r = [&] {
        cache.access(c, false);  // evicts dirty a
        return cache.stats();
    }();
    EXPECT_EQ(r.writebacks, 1u);
}

TEST(CacheTest, WritebackAddressCorrect)
{
    Cache cache(smallCache());
    const uint64_t a = 4 * 64;   // set 0, tag 1
    cache.access(a, true);
    cache.access(8 * 64, false);
    const auto res = cache.access(12 * 64, false);
    if (res.writeback)
        EXPECT_EQ(res.writebackAddr, a);
}

TEST(CacheTest, CleanEvictionNoWriteback)
{
    Cache cache(smallCache());
    cache.access(0, false);
    cache.access(4 * 64, false);
    cache.access(8 * 64, false);
    EXPECT_EQ(cache.stats().writebacks, 0u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheTest, PrefetchFillInstallsLine)
{
    Cache cache(smallCache());
    EXPECT_TRUE(cache.prefetchFill(0x2000));
    EXPECT_FALSE(cache.prefetchFill(0x2000));   // already present
    const auto r = cache.access(0x2000, false);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.hitWasPrefetched);
    // Second touch is an ordinary hit.
    EXPECT_FALSE(cache.access(0x2000, false).hitWasPrefetched);
}

TEST(CacheTest, FlushInvalidatesEverything)
{
    Cache cache(smallCache());
    cache.access(0x3000, false);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x3000));
}

TEST(CacheTest, StatsConsistency)
{
    Cache cache(smallCache());
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        cache.access(rng.below(64) * 64, rng.chance(0.3));
    const auto &s = cache.stats();
    EXPECT_EQ(s.accesses, 10000u);
    EXPECT_EQ(s.hits + s.misses, s.accesses);
    EXPECT_GT(s.missRate(), 0.0);
    EXPECT_LT(s.missRate(), 1.0);
}

TEST(CacheTest, FitsWorkingSetPerfectlyAfterWarmup)
{
    // A working set equal to the cache size must be fully resident.
    Cache cache(smallCache());   // 512 B = 8 lines
    for (uint64_t pass = 0; pass < 2; ++pass)
        for (uint64_t line = 0; line < 8; ++line)
            cache.access(line * 64, false);
    cache.resetStats();
    for (uint64_t line = 0; line < 8; ++line)
        cache.access(line * 64, false);
    EXPECT_EQ(cache.stats().misses, 0u);
}

// Parameterized sweep: miss rate of a streaming pass must be ~1/1 for
// footprints over cache size, ~0 for under (after warmup).
class CacheFootprintTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CacheFootprintTest, SteadyStateStreamMissBehavior)
{
    const uint64_t footprint = GetParam();
    Cache cache({"c", 4096, 64, 4, 1});
    const uint64_t lines = footprint / 64;
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t l = 0; l < lines; ++l)
            cache.access(l * 64, false);
    cache.resetStats();
    for (uint64_t l = 0; l < lines; ++l)
        cache.access(l * 64, false);
    const double miss_rate = cache.stats().missRate();
    if (footprint <= 4096) {
        EXPECT_DOUBLE_EQ(miss_rate, 0.0) << footprint;
    } else {
        EXPECT_GT(miss_rate, 0.99) << footprint;
    }
}

INSTANTIATE_TEST_SUITE_P(Footprints, CacheFootprintTest,
                         ::testing::Values(1024, 2048, 4096, 8192,
                                           16384, 65536));

TEST(PrefetcherTest, TrainsOnAscendingStream)
{
    StridePrefetcher pf(PrefetcherConfig{});
    std::vector<uint64_t> out;
    for (int i = 0; i < 10; ++i) {
        out.clear();
        pf.observe(static_cast<uint64_t>(i) * 64, out);
    }
    EXPECT_GT(pf.stats().trained, 0u);
    EXPECT_GT(pf.stats().issued, 0u);
    // After training, the prefetcher predicts the next line(s).
    out.clear();
    pf.observe(10 * 64, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 11u * 64);
}

TEST(PrefetcherTest, TrainsOnDescendingStream)
{
    StridePrefetcher pf(PrefetcherConfig{});
    std::vector<uint64_t> out;
    for (int i = 100; i > 80; --i) {
        out.clear();
        pf.observe(static_cast<uint64_t>(i) * 64, out);
    }
    out.clear();
    pf.observe(80 * 64, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 79u * 64);
}

TEST(PrefetcherTest, DoesNotTrainOnRandom)
{
    StridePrefetcher pf(PrefetcherConfig{});
    Rng rng(5);
    std::vector<uint64_t> out;
    size_t issued = 0;
    for (int i = 0; i < 2000; ++i) {
        out.clear();
        pf.observe(rng.below(1 << 20) * 64, out);
        issued += out.size();
    }
    // Random addresses occasionally land near a tracker, but sustained
    // issue should be rare.
    EXPECT_LT(issued, 100u);
}

TEST(PrefetcherTest, TracksMultipleStreams)
{
    PrefetcherConfig cfg;
    cfg.streams = 4;
    StridePrefetcher pf(cfg);
    std::vector<uint64_t> out;
    // Interleave two streams far apart.
    for (int i = 0; i < 20; ++i) {
        out.clear();
        pf.observe(static_cast<uint64_t>(i) * 64, out);
        out.clear();
        pf.observe((1 << 24) + static_cast<uint64_t>(i) * 64, out);
    }
    EXPECT_GE(pf.stats().trained, 2u);
}

TEST(PrefetcherTest, ResetClearsState)
{
    StridePrefetcher pf(PrefetcherConfig{});
    std::vector<uint64_t> out;
    for (int i = 0; i < 10; ++i) {
        out.clear();
        pf.observe(static_cast<uint64_t>(i) * 64, out);
    }
    pf.reset();
    EXPECT_EQ(pf.stats().issued, 0u);
    out.clear();
    pf.observe(11 * 64, out);
    EXPECT_TRUE(out.empty());   // training lost
}

TEST(DramTest, MinServiceTimeFromBandwidth)
{
    DramConfig cfg;
    cfg.lineBytes = 64;
    cfg.peakBandwidth = 3.2e9;
    Dram dram(cfg);
    EXPECT_NEAR(dram.minServiceNs(), 64.0 / 3.2, 1e-9);
}

TEST(DramTest, CountsReadsAndWrites)
{
    Dram dram(DramConfig{});
    dram.read();
    dram.read();
    dram.write();
    EXPECT_EQ(dram.stats().reads, 2u);
    EXPECT_EQ(dram.stats().writes, 1u);
    EXPECT_EQ(dram.stats().accesses(), 3u);
}

TEST(DramTest, RejectsBadConfig)
{
    DramConfig cfg;
    cfg.latencyNs = -1.0;
    EXPECT_THROW(Dram{cfg}, std::runtime_error);
}

TEST(HierarchyTest, ServiceLevels)
{
    HierarchyConfig cfg;
    cfg.enablePrefetcher = false;
    MemoryHierarchy hier(cfg);
    // Cold: DRAM.
    EXPECT_EQ(hier.access(0x100000, false).level, ServiceLevel::Dram);
    // Warm in both: L1.
    EXPECT_EQ(hier.access(0x100000, false).level, ServiceLevel::L1);
}

TEST(HierarchyTest, L2HitAfterL1Eviction)
{
    HierarchyConfig cfg;
    cfg.enablePrefetcher = false;
    cfg.l1 = {"L1", 4096, 64, 2, 3};     // tiny L1
    cfg.l2 = {"L2", 1 << 20, 64, 8, 10};
    MemoryHierarchy hier(cfg);
    const uint64_t target = 0;
    hier.access(target, false);   // DRAM; now in L1 and L2
    // Thrash L1 set 0 (set stride = 32 lines x 64 B = 2 KiB).
    for (uint64_t i = 1; i <= 4; ++i)
        hier.access(i * 2048, false);
    EXPECT_EQ(hier.access(target, false).level, ServiceLevel::L2);
}

TEST(HierarchyTest, PrefetcherCoversSequentialStream)
{
    HierarchyConfig cfg;
    MemoryHierarchy hier(cfg);
    // Long sequential stream through DRAM-resident data.
    for (uint64_t i = 0; i < 4096; ++i)
        hier.access(i * 64, false);
    EXPECT_GT(hier.stats().prefetchCovered, 100u);
}

TEST(HierarchyTest, PrefetcherOffMeansNoCoverage)
{
    HierarchyConfig cfg;
    cfg.enablePrefetcher = false;
    MemoryHierarchy hier(cfg);
    for (uint64_t i = 0; i < 4096; ++i)
        hier.access(i * 64, false);
    EXPECT_EQ(hier.stats().prefetchCovered, 0u);
}

TEST(HierarchyTest, StatsAddUp)
{
    MemoryHierarchy hier(HierarchyConfig{});
    Rng rng(11);
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hier.access(rng.below(1 << 16) * 8, rng.chance(0.25));
    const auto &s = hier.stats();
    EXPECT_EQ(s.accesses, static_cast<uint64_t>(n));
    EXPECT_EQ(s.l1Hits + s.l2Hits + s.dramAccesses, s.accesses);
}

TEST(HierarchyTest, FlushForcesColdMisses)
{
    MemoryHierarchy hier(HierarchyConfig{});
    hier.access(0x5000, false);
    hier.flush();
    EXPECT_EQ(hier.access(0x5000, false).level, ServiceLevel::Dram);
}

} // namespace
} // namespace aapm
