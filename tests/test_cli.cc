/**
 * @file
 * Tests for the CLI option parser and the workload file format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/options.hh"
#include "workload/workload_io.hh"

namespace aapm
{
namespace
{

CliOptions
runOptions()
{
    CliOptions opts("test run", "test");
    opts.addOption("workload", "NAME", "", "workload");
    opts.addOption("limit", "WATTS", "14.5", "limit");
    opts.addFlag("verbose", "talk more");
    return opts;
}

TEST(CliOptionsTest, DefaultsApply)
{
    CliOptions opts = runOptions();
    std::string err;
    ASSERT_TRUE(opts.parse({}, &err)) << err;
    EXPECT_TRUE(opts.has("limit"));
    EXPECT_DOUBLE_EQ(opts.num("limit"), 14.5);
    EXPECT_FALSE(opts.has("workload"));
    EXPECT_FALSE(opts.flag("verbose"));
}

TEST(CliOptionsTest, SpaceSeparatedValues)
{
    CliOptions opts = runOptions();
    std::string err;
    ASSERT_TRUE(opts.parse({"--workload", "swim", "--limit", "11.5"},
                           &err))
        << err;
    EXPECT_EQ(opts.str("workload"), "swim");
    EXPECT_DOUBLE_EQ(opts.num("limit"), 11.5);
}

TEST(CliOptionsTest, EqualsSyntax)
{
    CliOptions opts = runOptions();
    std::string err;
    ASSERT_TRUE(opts.parse({"--workload=ammp", "--limit=10.5"}, &err));
    EXPECT_EQ(opts.str("workload"), "ammp");
    EXPECT_DOUBLE_EQ(opts.num("limit"), 10.5);
}

TEST(CliOptionsTest, FlagsAndPositionals)
{
    CliOptions opts = runOptions();
    std::string err;
    ASSERT_TRUE(opts.parse({"pos1", "--verbose", "pos2"}, &err));
    EXPECT_TRUE(opts.flag("verbose"));
    ASSERT_EQ(opts.positionals().size(), 2u);
    EXPECT_EQ(opts.positionals()[0], "pos1");
    EXPECT_EQ(opts.positionals()[1], "pos2");
}

TEST(CliOptionsTest, UnknownOptionErrors)
{
    CliOptions opts = runOptions();
    std::string err;
    EXPECT_FALSE(opts.parse({"--bogus", "1"}, &err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(CliOptionsTest, MissingValueErrors)
{
    CliOptions opts = runOptions();
    std::string err;
    EXPECT_FALSE(opts.parse({"--workload"}, &err));
    EXPECT_NE(err.find("needs a value"), std::string::npos);
}

TEST(CliOptionsTest, FlagWithValueErrors)
{
    CliOptions opts = runOptions();
    std::string err;
    EXPECT_FALSE(opts.parse({"--verbose=yes"}, &err));
}

TEST(CliOptionsTest, HelpRequested)
{
    CliOptions opts = runOptions();
    std::string err;
    EXPECT_FALSE(opts.parse({"--help"}, &err));
    EXPECT_TRUE(opts.helpRequested());
}

TEST(CliOptionsTest, NonNumericValueFatal)
{
    CliOptions opts = runOptions();
    std::string err;
    ASSERT_TRUE(opts.parse({"--limit", "lots"}, &err));
    EXPECT_THROW(opts.num("limit"), std::runtime_error);
}

TEST(CliOptionsTest, RequiredUnsetFatal)
{
    CliOptions opts = runOptions();
    std::string err;
    ASSERT_TRUE(opts.parse({}, &err));
    EXPECT_THROW(opts.str("workload"), std::runtime_error);
}

TEST(CliOptionsTest, UsageMentionsEveryOption)
{
    CliOptions opts = runOptions();
    const std::string u = opts.usage();
    EXPECT_NE(u.find("--workload"), std::string::npos);
    EXPECT_NE(u.find("--limit"), std::string::npos);
    EXPECT_NE(u.find("--verbose"), std::string::npos);
    EXPECT_NE(u.find("default: 14.5"), std::string::npos);
}

// ------------------------------------------------------------------ //
//                        Workload file format                         //
// ------------------------------------------------------------------ //

TEST(WorkloadIoTest, ParsesBasicDefinition)
{
    std::istringstream in(
        "# a comment\n"
        "workload myapp repeats 3\n"
        "phase stream instructions 1000 baseCpi 0.7 decodeRatio 1.2 "
        "memPerInstr 0.4 l1Miss 0.05 l2Miss 0.02 coverage 0.3 "
        "mlp 1.5 l2Mlp 2.0 fp 0.2 rsFrac 0.05\n"
        "phase think instructions 500 baseCpi 50 decodeRatio 1.0 "
        "memPerInstr 0 l1Miss 0 l2Miss 0 idle 1\n");
    const Workload w = parseWorkload(in);
    EXPECT_EQ(w.name(), "myapp");
    EXPECT_EQ(w.repeats(), 3u);
    ASSERT_EQ(w.phases().size(), 2u);
    EXPECT_EQ(w.phases()[0].name, "stream");
    EXPECT_DOUBLE_EQ(w.phases()[0].baseCpi, 0.7);
    EXPECT_DOUBLE_EQ(w.phases()[0].l2MissPerInstr, 0.02);
    EXPECT_FALSE(w.phases()[0].idle);
    EXPECT_TRUE(w.phases()[1].idle);
    EXPECT_EQ(w.totalInstructions(), 3u * 1500u);
}

TEST(WorkloadIoTest, RoundTripThroughDisk)
{
    Workload w("roundtrip", 2);
    Phase p;
    p.name = "only";
    p.instructions = 4242;
    p.baseCpi = 0.9;
    p.decodeRatio = 1.31;
    p.memPerInstr = 0.41;
    p.l1MissPerInstr = 0.061;
    p.l2MissPerInstr = 0.021;
    p.prefetchCoverage = 0.37;
    p.mlp = 1.7;
    p.l2Mlp = 2.3;
    p.fpPerInstr = 0.13;
    p.resourceStallFrac = 0.07;
    w.add(p);

    const std::string path =
        std::string(::testing::TempDir()) + "/wl_roundtrip.txt";
    saveWorkloadFile(path, w);
    const Workload loaded = loadWorkloadFile(path);
    EXPECT_EQ(loaded.name(), "roundtrip");
    EXPECT_EQ(loaded.repeats(), 2u);
    ASSERT_EQ(loaded.phases().size(), 1u);
    const Phase &q = loaded.phases()[0];
    EXPECT_EQ(q.instructions, 4242u);
    EXPECT_DOUBLE_EQ(q.baseCpi, 0.9);
    EXPECT_DOUBLE_EQ(q.decodeRatio, 1.31);
    EXPECT_DOUBLE_EQ(q.prefetchCoverage, 0.37);
    EXPECT_DOUBLE_EQ(q.resourceStallFrac, 0.07);
    std::remove(path.c_str());
}

TEST(WorkloadIoTest, RejectsUnknownKey)
{
    std::istringstream in("phase p instructions 10 wibble 3\n");
    EXPECT_THROW(parseWorkload(in), std::runtime_error);
}

TEST(WorkloadIoTest, RejectsBadNumber)
{
    std::istringstream in("phase p instructions ten\n");
    EXPECT_THROW(parseWorkload(in), std::runtime_error);
}

TEST(WorkloadIoTest, RejectsEmptyDefinition)
{
    std::istringstream in("# nothing here\n");
    EXPECT_THROW(parseWorkload(in), std::runtime_error);
}

TEST(WorkloadIoTest, RejectsInvalidPhaseValues)
{
    // decodeRatio < 1 violates the Phase invariant.
    std::istringstream in(
        "phase p instructions 10 decodeRatio 0.5\n");
    EXPECT_THROW(parseWorkload(in), std::runtime_error);
}

TEST(WorkloadIoTest, RejectsDuplicateHeader)
{
    std::istringstream in("workload a\nworkload b\nphase p "
                          "instructions 10\n");
    EXPECT_THROW(parseWorkload(in), std::runtime_error);
}

TEST(WorkloadIoTest, RejectsUnknownDirective)
{
    std::istringstream in("pahse p instructions 10\n");
    EXPECT_THROW(parseWorkload(in), std::runtime_error);
}

TEST(WorkloadIoTest, MissingFileFatal)
{
    EXPECT_THROW(loadWorkloadFile("/nonexistent/wl.txt"),
                 std::runtime_error);
}

TEST(ClusterManifestTest, ParsesTopologyAndPolicyDirectives)
{
    std::istringstream in(
        "# rack of two nodes\n"
        "topology 2x2\n"
        "policies uniform,greedy\n"
        "core crafty seconds 0.5\n"
        "core swim\n"
        "core gzip\n"
        "core mcf\n");
    const ClusterManifest m = parseClusterManifest(in);
    ASSERT_EQ(m.entries.size(), 4u);
    EXPECT_EQ(m.entries[0].workload, "crafty");
    EXPECT_DOUBLE_EQ(m.entries[0].seconds, 0.5);
    EXPECT_EQ(m.topology, "2x2");
    EXPECT_EQ(m.policies, "uniform,greedy");
}

TEST(ClusterManifestTest, DirectivesAreOptional)
{
    std::istringstream in("core crafty\n");
    const ClusterManifest m = parseClusterManifest(in);
    ASSERT_EQ(m.entries.size(), 1u);
    EXPECT_TRUE(m.topology.empty());
    EXPECT_TRUE(m.policies.empty());
}

TEST(ClusterManifestTest, RejectsDuplicateOrMalformedDirectives)
{
    {
        std::istringstream in("topology 2x2\ntopology 4\ncore a\n");
        EXPECT_THROW(parseClusterManifest(in), std::runtime_error);
    }
    {
        std::istringstream in("topology\ncore a\n");
        EXPECT_THROW(parseClusterManifest(in), std::runtime_error);
    }
    {
        std::istringstream in("policies uniform greedy\ncore a\n");
        EXPECT_THROW(parseClusterManifest(in), std::runtime_error);
    }
}

// Manifest numerics are parsed strictly: the whole token must be one
// finite number. The old strtod/strtoull path accepted trailing
// garbage ("0.5x" read as 0.5) and non-finite spellings, which turned
// manifest typos into silently wrong runs.
TEST(WorkloadIoTest, RejectsTrailingGarbageInNumbers)
{
    for (const char *bad : {"0.5x", "1e", "5,0"}) {
        std::istringstream in(std::string("core crafty seconds ") +
                              bad + "\n");
        EXPECT_THROW(parseClusterManifest(in), std::runtime_error)
            << "seconds '" << bad << "' should be rejected";
    }
    std::istringstream phase("phase p instructions 10u\n");
    EXPECT_THROW(parseWorkload(phase), std::runtime_error);
}

TEST(WorkloadIoTest, RejectsNonFiniteAndOverflowingNumbers)
{
    for (const char *bad : {"inf", "nan", "1e999", "-1e999"}) {
        std::istringstream in(std::string("core crafty seconds ") +
                              bad + "\n");
        EXPECT_THROW(parseClusterManifest(in), std::runtime_error)
            << "seconds '" << bad << "' should be rejected";
    }
    std::istringstream wl(
        "phase p instructions 99999999999999999999999\n");
    EXPECT_THROW(parseWorkload(wl), std::runtime_error);
    std::istringstream neg("phase p instructions -3\n");
    EXPECT_THROW(parseWorkload(neg), std::runtime_error);
}

TEST(ClusterManifestTest, ParsesServingDirectives)
{
    std::istringstream in(
        "# serving scenario, no per-core entries needed\n"
        "arrival bursty\n"
        "rate 2000\n"
        "slo 0.05\n"
        "request-mix web:4:0.7,api:12:0.3\n"
        "queue-cap 64\n"
        "dispatch rr\n"
        "serve-seed 7\n");
    const ClusterManifest m = parseClusterManifest(in);
    EXPECT_TRUE(m.entries.empty());
    EXPECT_EQ(m.arrival, "bursty");
    EXPECT_EQ(m.rate, "2000");
    EXPECT_EQ(m.slo, "0.05");
    EXPECT_EQ(m.requestMix, "web:4:0.7,api:12:0.3");
    EXPECT_EQ(m.queueCap, "64");
    EXPECT_EQ(m.dispatch, "rr");
    EXPECT_EQ(m.serveSeed, "7");
}

TEST(ClusterManifestTest, ServingDirectivesComposeWithCores)
{
    std::istringstream in(
        "arrival poisson\n"
        "rate 500\n"
        "topology 2x2\n"
        "core crafty\n"
        "core swim\n"
        "core gzip\n"
        "core mcf\n");
    const ClusterManifest m = parseClusterManifest(in);
    EXPECT_EQ(m.entries.size(), 4u);
    EXPECT_EQ(m.arrival, "poisson");
    EXPECT_EQ(m.rate, "500");
    EXPECT_EQ(m.topology, "2x2");
}

TEST(ClusterManifestTest, RejectsDuplicateServingDirectives)
{
    std::istringstream in("rate 100\nrate 200\n");
    EXPECT_THROW(parseClusterManifest(in), std::runtime_error);
}

} // namespace
} // namespace aapm
