/**
 * @file
 * Unit tests for the discrete-event kernel and the tick time base.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace aapm
{
namespace
{

TEST(Ticks, Conversions)
{
    EXPECT_EQ(secondsToTicks(1.0), TicksPerSec);
    EXPECT_EQ(secondsToTicks(0.01), 10 * TicksPerMs);
    EXPECT_DOUBLE_EQ(ticksToSeconds(TicksPerSec), 1.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(TicksPerMs), 1e-3);
}

TEST(Ticks, PeriodFromMhz)
{
    EXPECT_EQ(periodFromMhz(2000.0), 500u);   // 2 GHz -> 500 ps
    EXPECT_EQ(periodFromMhz(600.0), 1667u);
    EXPECT_EQ(periodFromMhz(1000.0), 1000u);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper a("a", [&] { order.push_back(1); });
    EventFunctionWrapper b("b", [&] { order.push_back(2); });
    EventFunctionWrapper c("c", [&] { order.push_back(3); });
    eq.schedule(&c, 300);
    eq.schedule(&a, 100);
    eq.schedule(&b, 200);
    eq.runUntil(1000);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper low("low", [&] { order.push_back(2); }, 5);
    EventFunctionWrapper high("high", [&] { order.push_back(1); }, -5);
    eq.schedule(&low, 100);
    eq.schedule(&high, 100);
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, SequenceBreaksEqualPriorityTies)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper first("first", [&] { order.push_back(1); });
    EventFunctionWrapper second("second", [&] { order.push_back(2); });
    eq.schedule(&first, 50);
    eq.schedule(&second, 50);
    eq.runUntil(50);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsAtLimitExecute)
{
    EventQueue eq;
    bool ran = false;
    EventFunctionWrapper ev("ev", [&] { ran = true; });
    eq.schedule(&ev, 100);
    eq.runUntil(100);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, EventsPastLimitDoNotExecute)
{
    EventQueue eq;
    bool ran = false;
    EventFunctionWrapper ev("ev", [&] { ran = true; });
    eq.schedule(&ev, 101);
    eq.runUntil(100);
    EXPECT_FALSE(ran);
    EXPECT_TRUE(ev.scheduled());
    eq.deschedule(&ev);
}

TEST(EventQueue, SelfReschedulingEvent)
{
    EventQueue eq;
    int count = 0;
    EventFunctionWrapper *self = nullptr;
    EventFunctionWrapper ev("tick", [&] {
        ++count;
        if (count < 5)
            eq.schedule(self, eq.now() + 10);
    });
    self = &ev;
    eq.schedule(&ev, 10);
    eq.runUntil(1000);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.nextTick(), MaxTick);
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    bool ran = false;
    EventFunctionWrapper ev("ev", [&] { ran = true; });
    eq.schedule(&ev, 100);
    eq.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    eq.runUntil(200);
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    Tick fired_at = 0;
    EventFunctionWrapper ev("ev", [&] { fired_at = eq.now(); });
    eq.schedule(&ev, 100);
    eq.reschedule(&ev, 500);
    eq.runUntil(1000);
    EXPECT_EQ(fired_at, 500u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    EventFunctionWrapper a("a", [] {});
    EventFunctionWrapper b("b", [] {});
    eq.schedule(&a, 100);
    eq.runUntil(100);
    EXPECT_THROW(eq.schedule(&b, 50), std::logic_error);
}

TEST(EventQueue, DoubleScheduleSameEventPanics)
{
    EventQueue eq;
    EventFunctionWrapper ev("ev", [] {});
    eq.schedule(&ev, 100);
    EXPECT_THROW(eq.schedule(&ev, 200), std::logic_error);
    eq.deschedule(&ev);
}

TEST(EventQueue, DescheduleUnscheduledPanics)
{
    EventQueue eq;
    EventFunctionWrapper ev("ev", [] {});
    EXPECT_THROW(eq.deschedule(&ev), std::logic_error);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    EventFunctionWrapper a("a", [&] { ++count; });
    EventFunctionWrapper b("b", [&] { ++count; });
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ProcessedCountAccumulates)
{
    EventQueue eq;
    EventFunctionWrapper a("a", [] {});
    EventFunctionWrapper b("b", [] {});
    eq.schedule(&a, 1);
    eq.schedule(&b, 2);
    eq.runUntil(10);
    EXPECT_EQ(eq.processedCount(), 2u);
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue eq;
    Tick seen = 0;
    EventFunctionWrapper ev("ev", [&] { seen = eq.now(); });
    eq.schedule(&ev, 777);
    eq.step();
    EXPECT_EQ(seen, 777u);
    EXPECT_EQ(eq.now(), 777u);
}

TEST(EventQueue, EventScheduledAtNow)
{
    // An event may schedule another at the current tick (runs after).
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper second("second", [&] { order.push_back(2); });
    EventFunctionWrapper first("first", [&] {
        order.push_back(1);
        eq.schedule(&second, eq.now());
    });
    eq.schedule(&first, 10);
    eq.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

} // namespace
} // namespace aapm
