/**
 * @file
 * Unit tests for the common library: logging, RNG, statistics, moving
 * windows, fitting, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/fit.hh"
#include "common/logging.hh"
#include "common/moving_window.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace aapm
{
namespace
{

TEST(Logging, PanicThrows)
{
    EXPECT_THROW(aapm_panic("boom %d", 42), std::logic_error);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(aapm_fatal("bad config"), std::runtime_error);
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(aapm_assert(1 + 1 == 2, "math"));
}

TEST(Logging, AssertThrowsOnFalse)
{
    EXPECT_THROW(aapm_assert(false, "must fail"), std::logic_error);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformBoundsRespected)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, BelowUnbiasedish)
{
    Rng rng(11);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(10)];
    for (int c : counts) {
        EXPECT_GT(c, n / 10 - n / 50);
        EXPECT_LT(c, n / 10 + n / 50);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.gaussian(2.0, 3.0));
    EXPECT_NEAR(stats.mean(), 2.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, WeightedMean)
{
    RunningStats s;
    s.addWeighted(1.0, 1.0);
    s.addWeighted(10.0, 3.0);
    EXPECT_NEAR(s.mean(), (1.0 + 30.0) / 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.totalWeight(), 4.0);
}

TEST(RunningStats, ZeroWeightIgnored)
{
    RunningStats s;
    s.add(5.0);
    s.addWeighted(1000.0, 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.count(), 1u);
}

TEST(RunningStats, NegativeWeightPanics)
{
    RunningStats s;
    EXPECT_THROW(s.addWeighted(1.0, -1.0), std::logic_error);
}

// An integer weight must act as replication: addWeighted(x, k) and
// k plain add(x) calls are the same sample set, so every moment has
// to agree (this is the reliability-weight contract variance() is
// documented to implement — frequency-weight code fails it).
TEST(RunningStats, WeightedVarianceMatchesReplication)
{
    RunningStats weighted, replicated;
    const std::pair<double, int> samples[] = {
        {2.0, 1}, {4.0, 3}, {5.0, 2}, {9.0, 1}};
    for (const auto &[x, k] : samples) {
        weighted.addWeighted(x, static_cast<double>(k));
        for (int i = 0; i < k; ++i)
            replicated.add(x);
    }
    EXPECT_NEAR(weighted.mean(), replicated.mean(), 1e-12);
    EXPECT_NEAR(weighted.variance(), replicated.variance(), 1e-12);
    EXPECT_NEAR(weighted.stddev(), replicated.stddev(), 1e-12);
}

// Reliability weights carry no unit, so scaling every weight by the
// same factor must leave mean and variance untouched.
TEST(RunningStats, VarianceInvariantUnderWeightScaling)
{
    RunningStats base, scaled;
    const double xs[] = {1.5, 2.5, 8.0, 8.0, 11.0};
    const double ws[] = {0.25, 1.0, 2.0, 0.5, 1.25};
    for (size_t i = 0; i < 5; ++i) {
        base.addWeighted(xs[i], ws[i]);
        scaled.addWeighted(xs[i], ws[i] * 1000.0);
    }
    EXPECT_NEAR(base.mean(), scaled.mean(), 1e-12);
    EXPECT_NEAR(base.variance(), scaled.variance(), 1e-9);
}

TEST(RunningStats, NonFiniteInputPanics)
{
    RunningStats s;
    EXPECT_THROW(s.add(std::numeric_limits<double>::infinity()),
                 std::logic_error);
    EXPECT_THROW(s.add(std::numeric_limits<double>::quiet_NaN()),
                 std::logic_error);
    EXPECT_THROW(
        s.addWeighted(1.0, std::numeric_limits<double>::infinity()),
        std::logic_error);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(3.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BinsAndCounts)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    for (size_t b = 0; b < 10; ++b)
        EXPECT_EQ(h.binCount(b), 1u);
    EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, OutOfRangeClamped)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-5.0);
    h.add(25.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
}

TEST(Histogram, QuantileApprox)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

// The range is half-open [lo, hi): hi itself is out of range and must
// count as overflow (clamped into the last bin), while any value
// strictly below hi is in range. The old closed-upper-bound behavior
// silently filed hi as a regular sample.
TEST(Histogram, UpperBoundCountsAsOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.add(10.0);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    h.add(std::nextafter(10.0, 0.0));
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_EQ(h.total(), 2u);
}

// quantile() answers with the covering bin's upper edge: every
// in-range sample in a half-open bin is strictly below that edge, so
// the edge is sound even when the quantile lands exactly on a bin
// boundary.
TEST(Histogram, QuantileReturnsBinUpperEdge)
{
    Histogram h(0.0, 10.0, 10);
    for (double x : {0.5, 1.5, 2.5, 3.5})
        h.add(x);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);

    Histogram top(0.0, 10.0, 5);
    top.add(10.0);
    top.add(12.0);
    EXPECT_DOUBLE_EQ(top.quantile(0.5), 10.0);
}

TEST(Histogram, InvalidConfigFatal)
{
    EXPECT_THROW(Histogram(5.0, 5.0, 10), std::logic_error);
}

TEST(SampleSeries, ExactQuantiles)
{
    SampleSeries s;
    for (int i = 0; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(SampleSeries, FractionAbove)
{
    SampleSeries s;
    for (int i = 1; i <= 10; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.fractionAbove(5.0), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAbove(10.0), 0.0);
    EXPECT_DOUBLE_EQ(s.fractionAbove(0.0), 1.0);
}

TEST(MovingWindow, MeanTracksWindow)
{
    MovingWindow w(3);
    w.push(3.0);
    EXPECT_DOUBLE_EQ(w.mean(), 3.0);
    w.push(6.0);
    EXPECT_DOUBLE_EQ(w.mean(), 4.5);
    w.push(9.0);
    EXPECT_DOUBLE_EQ(w.mean(), 6.0);
    w.push(12.0);   // evicts 3.0
    EXPECT_DOUBLE_EQ(w.mean(), 9.0);
}

TEST(MovingWindow, FullFlag)
{
    MovingWindow w(2);
    EXPECT_FALSE(w.full());
    w.push(1.0);
    EXPECT_FALSE(w.full());
    w.push(1.0);
    EXPECT_TRUE(w.full());
}

TEST(MovingWindow, AllOfRequiresFull)
{
    MovingWindow w(3);
    w.push(1.0);
    w.push(1.0);
    EXPECT_FALSE(w.allOf([](double v) { return v > 0.0; }));
    w.push(1.0);
    EXPECT_TRUE(w.allOf([](double v) { return v > 0.0; }));
    w.push(-1.0);
    EXPECT_FALSE(w.allOf([](double v) { return v > 0.0; }));
}

TEST(MovingWindow, ClearResets)
{
    MovingWindow w(2);
    w.push(5.0);
    w.clear();
    EXPECT_EQ(w.size(), 0u);
    EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(LinearFitTest, LeastSquaresExact)
{
    std::vector<double> xs = {0, 1, 2, 3, 4};
    std::vector<double> ys = {1, 3, 5, 7, 9};   // y = 2x + 1
    const LinearFit fit = fitLeastSquares(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.meanAbsError(xs, ys), 0.0, 1e-12);
}

TEST(LinearFitTest, LeastSquaresDegenerateX)
{
    std::vector<double> xs = {2, 2, 2};
    std::vector<double> ys = {1, 2, 3};
    const LinearFit fit = fitLeastSquares(xs, ys);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
}

TEST(LinearFitTest, LadRobustToOutlier)
{
    // y = x with one wild outlier; LAD should stay near slope 1 while
    // OLS is dragged off.
    std::vector<double> xs, ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(i);
        ys.push_back(i);
    }
    ys[10] = 200.0;
    const LinearFit ols = fitLeastSquares(xs, ys);
    const LinearFit lad = fitLeastAbsolute(xs, ys);
    EXPECT_GT(std::abs(ols.intercept) + std::abs(ols.slope - 1.0),
              std::abs(lad.intercept) + std::abs(lad.slope - 1.0));
    EXPECT_NEAR(lad.slope, 1.0, 0.05);
    EXPECT_NEAR(lad.intercept, 0.0, 0.5);
}

TEST(LinearFitTest, TooFewPointsPanics)
{
    std::vector<double> xs = {1.0};
    std::vector<double> ys = {1.0};
    EXPECT_THROW(fitLeastSquares(xs, ys), std::logic_error);
}

TEST(GridSearchTest, FindsQuadraticMinimum)
{
    const std::vector<GridAxis> axes = {{-2.0, 2.0, 81}};
    const auto result = gridSearch(axes, [](const std::vector<double> &p) {
        return (p[0] - 0.5) * (p[0] - 0.5);
    });
    EXPECT_NEAR(result.best[0], 0.5, 0.05);
}

TEST(GridSearchTest, FindsBothLocalMinima)
{
    // Double-well potential: minima near -1 and +1.
    const std::vector<GridAxis> axes = {{-2.0, 2.0, 201}};
    const auto result = gridSearch(axes, [](const std::vector<double> &p) {
        const double x = p[0];
        return (x * x - 1.0) * (x * x - 1.0) + 0.05 * x;
    });
    ASSERT_GE(result.localMinima.size(), 2u);
    std::vector<double> locations;
    for (const auto &[params, loss] : result.localMinima)
        locations.push_back(params[0]);
    std::sort(locations.begin(), locations.end());
    EXPECT_NEAR(locations.front(), -1.0, 0.1);
    EXPECT_NEAR(locations.back(), 1.0, 0.1);
}

TEST(GridSearchTest, TwoDimensional)
{
    const std::vector<GridAxis> axes = {{-1.0, 1.0, 41},
                                        {-1.0, 1.0, 41}};
    const auto result = gridSearch(axes, [](const std::vector<double> &p) {
        return (p[0] - 0.25) * (p[0] - 0.25) +
               (p[1] + 0.5) * (p[1] + 0.5);
    });
    EXPECT_NEAR(result.best[0], 0.25, 0.05);
    EXPECT_NEAR(result.best[1], -0.5, 0.05);
}

TEST(GridAxisTest, EndpointsInclusive)
{
    GridAxis ax{1.0, 3.0, 5};
    EXPECT_DOUBLE_EQ(ax.at(0), 1.0);
    EXPECT_DOUBLE_EQ(ax.at(4), 3.0);
    EXPECT_DOUBLE_EQ(ax.at(2), 2.0);
}

TEST(TextTableTest, AlignsAndCounts)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"alpha", TextTable::num(1.5)});
    t.row({"beta", TextTable::num(int64_t(42))});
    EXPECT_EQ(t.numRows(), 2u);
    const std::string s = t.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTableTest, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(3.14159, 4), "3.1416");
    EXPECT_EQ(TextTable::num(int64_t(-7)), "-7");
}

TEST(CsvWriterTest, WritesRowsAndQuotes)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/csv_test.csv";
    {
        CsvWriter csv(path);
        csv.row({"plain", "has,comma", "has\"quote", "has\nnewline"});
        csv.rowNums({1.5, -2.0, 0.125});
    }
    std::ifstream in(path);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(all.find("plain,\"has,comma\",\"has\"\"quote\""),
              std::string::npos);
    EXPECT_NE(all.find("1.5,-2,0.125"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CsvWriterTest, UnwritablePathFatal)
{
    EXPECT_THROW(CsvWriter("/nonexistent/dir/out.csv"),
                 std::runtime_error);
}

} // namespace
} // namespace aapm
