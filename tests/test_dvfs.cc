/**
 * @file
 * Tests for the p-state table and the DVFS actuator model.
 */

#include <gtest/gtest.h>

#include "dvfs/dvfs_controller.hh"
#include "dvfs/pstate.hh"
#include "sim/ticks.hh"

namespace aapm
{
namespace
{

TEST(PStateTableTest, PentiumMMatchesPaperTableII)
{
    const PStateTable t = PStateTable::pentiumM();
    ASSERT_EQ(t.size(), 8u);
    EXPECT_DOUBLE_EQ(t[0].freqMhz, 600.0);
    EXPECT_DOUBLE_EQ(t[0].voltage, 0.998);
    EXPECT_DOUBLE_EQ(t[7].freqMhz, 2000.0);
    EXPECT_DOUBLE_EQ(t[7].voltage, 1.340);
    EXPECT_DOUBLE_EQ(t[3].freqMhz, 1200.0);
    EXPECT_DOUBLE_EQ(t[3].voltage, 1.148);
}

TEST(PStateTableTest, FrequencyAscending)
{
    const PStateTable t = PStateTable::pentiumM();
    for (size_t i = 1; i < t.size(); ++i) {
        EXPECT_GT(t[i].freqMhz, t[i - 1].freqMhz);
        EXPECT_GT(t[i].voltage, t[i - 1].voltage);
    }
}

TEST(PStateTableTest, FreqGhz)
{
    const PStateTable t = PStateTable::pentiumM();
    EXPECT_DOUBLE_EQ(t[7].freqGhz(), 2.0);
    EXPECT_DOUBLE_EQ(t[0].freqGhz(), 0.6);
}

TEST(PStateTableTest, IndexOfMhz)
{
    const PStateTable t = PStateTable::pentiumM();
    EXPECT_EQ(t.indexOfMhz(1400.0), 4u);
    EXPECT_THROW(t.indexOfMhz(1500.0), std::runtime_error);
}

TEST(PStateTableTest, HighestAtOrBelow)
{
    const PStateTable t = PStateTable::pentiumM();
    EXPECT_EQ(t.highestAtOrBelowMhz(2000.0), 7u);
    EXPECT_EQ(t.highestAtOrBelowMhz(1999.0), 6u);
    EXPECT_EQ(t.highestAtOrBelowMhz(700.0), 0u);
    EXPECT_EQ(t.highestAtOrBelowMhz(100.0), 0u);   // clamps to slowest
}

TEST(PStateTableTest, RejectsUnsortedTable)
{
    EXPECT_THROW(PStateTable({{1000.0, 1.1}, {800.0, 1.0}}),
                 std::runtime_error);
}

TEST(PStateTableTest, RejectsEmptyTable)
{
    EXPECT_THROW(PStateTable(std::vector<PState>{}),
                 std::runtime_error);
}

TEST(PStateTableTest, MaxIndex)
{
    EXPECT_EQ(PStateTable::pentiumM().maxIndex(), 7u);
}

TEST(DvfsController, StartsAtInitialState)
{
    DvfsController ctrl(PStateTable::pentiumM(), 3);
    EXPECT_EQ(ctrl.currentIndex(), 3u);
    EXPECT_DOUBLE_EQ(ctrl.current().freqMhz, 1200.0);
}

TEST(DvfsController, RejectsOutOfRangeInitial)
{
    EXPECT_THROW(DvfsController(PStateTable::pentiumM(), 8),
                 std::runtime_error);
}

TEST(DvfsController, TransitionChangesStateAndCosts)
{
    DvfsController ctrl(PStateTable::pentiumM(), 7);
    const Tick stall = ctrl.requestPState(0);
    EXPECT_EQ(ctrl.currentIndex(), 0u);
    EXPECT_GT(stall, 0u);
    EXPECT_EQ(ctrl.stats().transitions, 1u);
    EXPECT_EQ(ctrl.stats().stallTicks, stall);
}

TEST(DvfsController, NoOpTransitionIsFree)
{
    DvfsController ctrl(PStateTable::pentiumM(), 4);
    EXPECT_EQ(ctrl.requestPState(4), 0u);
    EXPECT_EQ(ctrl.stats().transitions, 0u);
}

TEST(DvfsController, LargerVoltageSwingCostsMore)
{
    DvfsController a(PStateTable::pentiumM(), 7);
    DvfsController b(PStateTable::pentiumM(), 7);
    const Tick small = a.requestPState(6);   // 1.340 -> 1.292 V
    const Tick large = b.requestPState(0);   // 1.340 -> 0.998 V
    EXPECT_GT(large, small);
}

TEST(DvfsController, TransitionCostMatchesConfig)
{
    DvfsConfig cfg;
    cfg.transitionUs = 10.0;
    cfg.slewUsPer100mV = 5.0;
    DvfsController ctrl(PStateTable::pentiumM(), 7, cfg);
    // 1.340 -> 0.998 V = 342 mV -> 10 + 5*3.42 = 27.1 us.
    const Tick stall = ctrl.requestPState(0);
    EXPECT_NEAR(static_cast<double>(stall) / TicksPerUs, 27.1, 0.01);
}

TEST(DvfsController, ResidencyAccounting)
{
    DvfsController ctrl(PStateTable::pentiumM(), 7);
    ctrl.accountResidency(100);
    ctrl.requestPState(0);
    ctrl.accountResidency(250);
    EXPECT_EQ(ctrl.stats().residency[7], 100u);
    EXPECT_EQ(ctrl.stats().residency[0], 250u);
    EXPECT_EQ(ctrl.stats().residency[4], 0u);
}

TEST(DvfsController, OutOfRangeRequestFatal)
{
    DvfsController ctrl(PStateTable::pentiumM(), 0);
    EXPECT_THROW(ctrl.requestPState(12), std::runtime_error);
}

} // namespace
} // namespace aapm
