/**
 * @file
 * Observability-layer tests: MetricRegistry semantics (thread-local
 * shards, retired-thread merge, JSON export), profiling scopes, the
 * interval tracer (JSONL/CSV round-trips at full double precision,
 * `every=N` sampling, bit-identical simulation with tracing on/off)
 * and governor-decision replay from a captured trace.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "aapm.hh"
#include "common/random.hh"

namespace
{

using namespace aapm;

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

// ------------------------------------------------------------------ //
//                          MetricRegistry                            //
// ------------------------------------------------------------------ //

TEST(Metrics, CountersAccumulateAndMerge)
{
    MetricRegistry reg;
    const CounterId id = reg.counter("events");
    reg.add(id);
    reg.add(id, 41);
    EXPECT_EQ(reg.counterValue("events"), 42u);
    EXPECT_EQ(reg.counterValue("never-registered"), 0u);
}

TEST(Metrics, DuplicateNameReturnsSameSlot)
{
    MetricRegistry reg;
    const CounterId a = reg.counter("dup");
    const CounterId b = reg.counter("dup");
    EXPECT_EQ(a.index, b.index);
    reg.add(a, 1);
    reg.add(b, 2);
    EXPECT_EQ(reg.counterValue("dup"), 3u);
}

TEST(Metrics, GaugeIsLastWriterWins)
{
    MetricRegistry reg;
    const GaugeId id = reg.gauge("level");
    reg.set(id, 1.5);
    reg.set(id, 2.5);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "level");
    EXPECT_EQ(snap[0].kind, MetricKind::Gauge);
    EXPECT_DOUBLE_EQ(snap[0].value, 2.5);
}

TEST(Metrics, HistogramBucketsArePowerOfTwo)
{
    MetricRegistry reg;
    const HistogramId id = reg.histogram("lat");
    reg.observe(id, 0.5);   // bucket 0: v < 1
    reg.observe(id, 1.0);   // bucket 1: 1 <= v < 2
    reg.observe(id, 3.0);   // bucket 2: 2 <= v < 4
    reg.observe(id, 3.5);   // bucket 2
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].count, 4u);
    EXPECT_DOUBLE_EQ(snap[0].value, 8.0);
    EXPECT_DOUBLE_EQ(snap[0].mean(), 2.0);
    EXPECT_EQ(snap[0].buckets[0], 1u);
    EXPECT_EQ(snap[0].buckets[1], 1u);
    EXPECT_EQ(snap[0].buckets[2], 2u);
}

TEST(Metrics, ExitedThreadShardsFoldIntoSnapshot)
{
    MetricRegistry reg;
    const CounterId cid = reg.counter("thread.events");
    const HistogramId hid = reg.histogram("thread.obs");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 1000; ++i)
                reg.add(cid);
            reg.observe(hid, 2.0);
        });
    }
    for (auto &t : threads)
        t.join();
    // Every recording thread has exited: the snapshot must see the
    // retired totals.
    EXPECT_EQ(reg.counterValue("thread.events"), 4000u);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    for (const auto &m : snap) {
        if (m.name != "thread.obs")
            continue;
        EXPECT_EQ(m.count, 4u);
        EXPECT_DOUBLE_EQ(m.value, 8.0);
    }
}

TEST(Metrics, LiveThreadShardsMergeWithoutExit)
{
    // The snapshotting thread itself holds a live shard.
    MetricRegistry reg;
    const CounterId id = reg.counter("live");
    reg.add(id, 7);
    EXPECT_EQ(reg.counterValue("live"), 7u);
    reg.add(id, 3);
    EXPECT_EQ(reg.counterValue("live"), 10u);
}

TEST(Metrics, WriteJsonProducesDocument)
{
    MetricRegistry reg;
    reg.add(reg.counter("written.count"), 5);
    reg.observe(reg.histogram("written.hist"), 4.0);
    const std::string path = tempPath("metrics_out.json");
    ASSERT_TRUE(reg.writeJson(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("\"aapm_metrics\""), std::string::npos);
    EXPECT_NE(doc.find("written.count"), std::string::npos);
    EXPECT_NE(doc.find("written.hist"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Metrics, WriteJsonFailsGracefully)
{
    MetricRegistry reg;
    reg.add(reg.counter("x"), 1);
    EXPECT_FALSE(reg.writeJson("/nonexistent/dir/metrics.json"));
}

// ------------------------------------------------------------------ //
//                         Profiling scopes                           //
// ------------------------------------------------------------------ //

uint64_t
histogramCount(const std::string &name)
{
    for (const auto &m : MetricRegistry::global().snapshot()) {
        if (m.name == name)
            return m.count;
    }
    return 0;
}

void
profiledWork()
{
    AAPM_PROF_SCOPE("obs_test_work");
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i)
        sink = sink + i;
}

TEST(Profiling, ScopeRecordsOnlyWhenEnabled)
{
    setProfiling(false);
    profiledWork();
    const uint64_t off = histogramCount("prof.obs_test_work.ns");
    setProfiling(true);
    profiledWork();
    profiledWork();
    setProfiling(false);
    EXPECT_EQ(histogramCount("prof.obs_test_work.ns"), off + 2);
    profiledWork();
    EXPECT_EQ(histogramCount("prof.obs_test_work.ns"), off + 2);
}

// ------------------------------------------------------------------ //
//                        Interval tracing                            //
// ------------------------------------------------------------------ //

Phase
randomPhase(Rng &rng)
{
    Phase p;
    p.name = "fuzz";
    p.baseCpi = rng.uniform(0.4, 2.0);
    p.decodeRatio = rng.uniform(1.0, 1.7);
    p.memPerInstr = rng.uniform(0.2, 0.6);
    p.l1MissPerInstr = rng.uniform(0.0, p.memPerInstr * 0.3);
    p.l2MissPerInstr = rng.uniform(0.0, p.l1MissPerInstr);
    p.prefetchCoverage = rng.uniform(0.0, 0.9);
    p.mlp = rng.uniform(1.0, 3.0);
    p.l2Mlp = rng.uniform(1.0, 3.0);
    p.fpPerInstr = rng.uniform(0.0, 0.6);
    p.resourceStallFrac = rng.uniform(0.0, 0.2);
    return p;
}

Workload
randomWorkload(uint64_t seed, const CoreParams &core)
{
    Rng rng(seed);
    CoreModel model(core);
    Workload w("fuzz", 4);
    const int phases = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < phases; ++i) {
        Phase p = randomPhase(rng);
        p.instructions = std::max<uint64_t>(
            10'000, static_cast<uint64_t>(
                        model.instrPerSec(p, 2.0) *
                        rng.uniform(0.02, 0.3)));
        w.add(p);
    }
    return w;
}

/** NaN-tolerant exact double comparison. */
bool
sameDouble(double a, double b)
{
    return (std::isnan(a) && std::isnan(b)) || a == b;
}

void
expectRecordsEqual(const IntervalRecord &a, const IntervalRecord &b,
                   size_t i)
{
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.when, b.when);
    EXPECT_TRUE(sameDouble(a.intervalSeconds, b.intervalSeconds));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_TRUE(sameDouble(a.ipc, b.ipc));
    EXPECT_TRUE(sameDouble(a.dpc, b.dpc));
    EXPECT_TRUE(sameDouble(a.dcuPerCycle, b.dcuPerCycle));
    EXPECT_TRUE(sameDouble(a.utilization, b.utilization));
    EXPECT_TRUE(sameDouble(a.measuredW, b.measuredW));
    EXPECT_TRUE(sameDouble(a.tempC, b.tempC));
    EXPECT_EQ(a.pstate, b.pstate);
    EXPECT_EQ(a.lastActuation, b.lastActuation);
    EXPECT_TRUE(sameDouble(a.trueW, b.trueW));
    EXPECT_TRUE(sameDouble(a.trueIpc, b.trueIpc));
    EXPECT_TRUE(sameDouble(a.trueDpc, b.trueDpc));
    EXPECT_TRUE(sameDouble(a.dieTempC, b.dieTempC));
    EXPECT_EQ(a.predValid, b.predValid);
    EXPECT_TRUE(sameDouble(a.predictedPowerW, b.predictedPowerW));
    EXPECT_TRUE(sameDouble(a.projectedIpc, b.projectedIpc));
    EXPECT_EQ(a.memBoundClass, b.memBoundClass);
    EXPECT_EQ(a.decided, b.decided);
    EXPECT_EQ(a.decision, b.decision);
    EXPECT_EQ(a.actuation, b.actuation);
    EXPECT_EQ(a.stallTicks, b.stallTicks);
    EXPECT_EQ(a.fallback, b.fallback);
    EXPECT_EQ(a.blind, b.blind);
    EXPECT_EQ(a.substitutions, b.substitutions);
    EXPECT_TRUE(sameDouble(a.idleS, b.idleS));
    EXPECT_EQ(a.cstate, b.cstate);
}

/** Run `w` under a fresh PM and capture every interval in memory. */
RunResult
tracedPmRun(Platform &platform, const Workload &w, VectorTraceSink &vec,
            uint64_t every = 1)
{
    PerformanceMaximizer pm(PowerEstimator::paperPentiumM(),
                            {.powerLimitW = 13.5});
    IntervalTracer tracer(vec, every);
    RunOptions opts;
    opts.tracer = &tracer;
    return platform.run(w, pm, opts);
}

TEST(Trace, SchemaIsStable)
{
    const auto &names = traceFieldNames();
    ASSERT_EQ(names.size(), 29u);
    EXPECT_EQ(names.front(), "i");
    EXPECT_EQ(names[1], "t_tick");
    EXPECT_EQ(names[16], "pred_valid");
    EXPECT_EQ(names[26], "substitutions");
    EXPECT_EQ(names[27], "idle_s");
    EXPECT_EQ(names.back(), "cstate");
}

TEST(Trace, RunIsBitIdenticalWithTracingOnAndOff)
{
    PlatformConfig config;
    Platform platform(config);
    const Workload w = randomWorkload(11, config.core);
    PerformanceMaximizer pm(PowerEstimator::paperPentiumM(),
                            {.powerLimitW = 13.5});

    const RunResult off = platform.run(w, pm);
    VectorTraceSink vec;
    const RunResult on = tracedPmRun(platform, w, vec);

    EXPECT_EQ(off.seconds, on.seconds);
    EXPECT_EQ(off.trueEnergyJ, on.trueEnergyJ);
    EXPECT_EQ(off.measuredEnergyJ, on.measuredEnergyJ);
    EXPECT_EQ(off.instructions, on.instructions);
    EXPECT_EQ(off.finalTempC, on.finalTempC);
    EXPECT_FALSE(vec.records().empty());
}

TEST(Trace, EveryNSamplesEveryNthInterval)
{
    PlatformConfig config;
    Platform platform(config);
    const Workload w = randomWorkload(12, config.core);

    VectorTraceSink all;
    tracedPmRun(platform, w, all, 1);
    const uint64_t intervals = all.records().size();
    ASSERT_GT(intervals, 3u);
    for (size_t i = 0; i < all.records().size(); ++i)
        EXPECT_EQ(all.records()[i].index, i);

    VectorTraceSink sampled;
    tracedPmRun(platform, w, sampled, 3);
    EXPECT_EQ(sampled.records().size(), (intervals + 2) / 3);
    for (const auto &rec : sampled.records())
        EXPECT_EQ(rec.index % 3, 0u);

    VectorTraceSink none;
    const RunResult r = tracedPmRun(platform, w, none, 0);
    EXPECT_TRUE(r.finished);
    EXPECT_TRUE(none.records().empty());
    EXPECT_GT(none.endTick(), 0u);   // begin/end framing still happens
}

TEST(Trace, RecordsMirrorRunGroundTruth)
{
    PlatformConfig config;
    Platform platform(config);
    const Workload w = randomWorkload(13, config.core);
    VectorTraceSink vec;
    const RunResult r = tracedPmRun(platform, w, vec);

    EXPECT_EQ(vec.meta().workload, "fuzz");
    EXPECT_EQ(vec.meta().governor, "PM");
    EXPECT_EQ(vec.meta().intervalTicks, config.sampleInterval);
    EXPECT_EQ(vec.meta().pstateCount, config.pstates.size());
    ASSERT_FALSE(vec.records().empty());
    const IntervalRecord &first = vec.records().front();
    EXPECT_EQ(first.index, 0u);
    EXPECT_EQ(first.pstate, config.initialPState);
    EXPECT_GT(first.trueW, 0.0);
    EXPECT_GT(first.dieTempC, 0.0);
    // PM's insight carries a power prediction for the decided state.
    EXPECT_TRUE(first.predValid);
    EXPECT_TRUE(std::isfinite(first.predictedPowerW));
    EXPECT_EQ(first.decision, first.decided ? first.decision : 0u);
    // The last interval of a finished run never consults the governor.
    EXPECT_FALSE(vec.records().back().decided);
    EXPECT_EQ(ticksToSeconds(vec.endTick()), r.seconds);
}

TEST(TraceJsonl, RoundTripIsBitExact)
{
    PlatformConfig config;
    Platform platform(config);
    const Workload w = randomWorkload(14, config.core);

    VectorTraceSink vec;
    tracedPmRun(platform, w, vec);

    const std::string path = tempPath("trace_rt.jsonl");
    {
        JsonlTraceSink file(path);
        IntervalTracer tracer(file);
        PerformanceMaximizer pm(PowerEstimator::paperPentiumM(),
                                {.powerLimitW = 13.5});
        RunOptions opts;
        opts.tracer = &tracer;
        platform.run(w, pm, opts);
    }

    ParsedTrace parsed;
    ASSERT_TRUE(readTraceJsonl(path, parsed));
    EXPECT_EQ(parsed.meta.workload, vec.meta().workload);
    EXPECT_EQ(parsed.meta.governor, vec.meta().governor);
    EXPECT_EQ(parsed.meta.intervalTicks, vec.meta().intervalTicks);
    EXPECT_EQ(parsed.meta.every, 1u);
    EXPECT_EQ(parsed.meta.pstateCount, vec.meta().pstateCount);
    EXPECT_EQ(parsed.endTick, vec.endTick());
    EXPECT_EQ(parsed.declaredRecords, vec.records().size());
    ASSERT_EQ(parsed.records.size(), vec.records().size());
    for (size_t i = 0; i < parsed.records.size(); ++i)
        expectRecordsEqual(parsed.records[i], vec.records()[i], i);
    std::remove(path.c_str());
}

TEST(TraceJsonl, TruncatedFileRejected)
{
    PlatformConfig config;
    Platform platform(config);
    const Workload w = randomWorkload(15, config.core);
    const std::string path = tempPath("trace_trunc.jsonl");
    {
        JsonlTraceSink file(path);
        IntervalTracer tracer(file);
        PerformanceMaximizer pm(PowerEstimator::paperPentiumM(),
                                {.powerLimitW = 13.5});
        RunOptions opts;
        opts.tracer = &tracer;
        platform.run(w, pm, opts);
    }
    // Drop the footer line: the reader must refuse the file.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_GT(lines.size(), 2u);
    {
        std::ofstream out(path);
        for (size_t i = 0; i + 1 < lines.size(); ++i)
            out << lines[i] << "\n";
    }
    ParsedTrace parsed;
    EXPECT_FALSE(readTraceJsonl(path, parsed));
    std::remove(path.c_str());

    ParsedTrace missing;
    EXPECT_FALSE(readTraceJsonl(tempPath("no_such_trace.jsonl"),
                                missing));
}

TEST(TraceCsv, RoundTripIsBitExact)
{
    PlatformConfig config;
    Platform platform(config);
    const Workload w = randomWorkload(16, config.core);

    VectorTraceSink vec;
    tracedPmRun(platform, w, vec);

    const std::string path = tempPath("trace_rt.csv");
    {
        // makeTraceSink dispatches on the extension.
        auto sink = makeTraceSink(path);
        IntervalTracer tracer(*sink);
        PerformanceMaximizer pm(PowerEstimator::paperPentiumM(),
                                {.powerLimitW = 13.5});
        RunOptions opts;
        opts.tracer = &tracer;
        platform.run(w, pm, opts);
    }

    ParsedTrace parsed;
    ASSERT_TRUE(readTraceCsv(path, parsed));
    EXPECT_EQ(parsed.meta.workload, vec.meta().workload);
    EXPECT_EQ(parsed.meta.governor, vec.meta().governor);
    EXPECT_EQ(parsed.endTick, vec.endTick());
    ASSERT_EQ(parsed.records.size(), vec.records().size());
    for (size_t i = 0; i < parsed.records.size(); ++i)
        expectRecordsEqual(parsed.records[i], vec.records()[i], i);
    std::remove(path.c_str());
}

// ------------------------------------------------------------------ //
//                     Decision replay from trace                     //
// ------------------------------------------------------------------ //

TEST(TraceReplay, PmDecisionSequenceReplaysExactly)
{
    PlatformConfig config;
    Platform platform(config);
    const Workload w = randomWorkload(17, config.core);
    VectorTraceSink vec;
    tracedPmRun(platform, w, vec);

    PerformanceMaximizer replay(PowerEstimator::paperPentiumM(),
                                {.powerLimitW = 13.5});
    replay.reset();
    size_t decided = 0;
    for (const auto &rec : vec.records()) {
        if (!rec.decided)
            continue;
        EXPECT_EQ(replay.decide(rec.toSample(), rec.pstate),
                  rec.decision)
            << "interval " << rec.index;
        ++decided;
    }
    EXPECT_GT(decided, 0u);
}

TEST(TraceReplay, PsDecisionSequenceReplaysExactly)
{
    PlatformConfig config;
    Platform platform(config);
    const Workload w = randomWorkload(18, config.core);

    PowerSave ps(config.pstates, PerfEstimator(1.21, 0.81), {0.6});
    VectorTraceSink vec;
    IntervalTracer tracer(vec);
    RunOptions opts;
    opts.tracer = &tracer;
    platform.run(w, ps, opts);

    PowerSave replay(config.pstates, PerfEstimator(1.21, 0.81), {0.6});
    replay.reset();
    size_t decided = 0;
    for (const auto &rec : vec.records()) {
        if (!rec.decided)
            continue;
        EXPECT_EQ(replay.decide(rec.toSample(), rec.pstate),
                  rec.decision)
            << "interval " << rec.index;
        ++decided;
    }
    EXPECT_GT(decided, 0u);
}

TEST(TraceReplay, PsInsightClassifiesMemoryBoundedness)
{
    PlatformConfig config;
    Platform platform(config);
    const Workload w = randomWorkload(19, config.core);
    PowerSave ps(config.pstates, PerfEstimator(1.21, 0.81), {0.6});
    VectorTraceSink vec;
    IntervalTracer tracer(vec);
    RunOptions opts;
    opts.tracer = &tracer;
    platform.run(w, ps, opts);
    ASSERT_FALSE(vec.records().empty());
    for (const auto &rec : vec.records()) {
        if (!rec.decided)
            continue;
        EXPECT_TRUE(rec.predValid);
        EXPECT_TRUE(rec.memBoundClass == 0 || rec.memBoundClass == 1);
    }
}

// ------------------------------------------------------------------ //
//                      Library-level counters                        //
// ------------------------------------------------------------------ //

TEST(Metrics, PlatformRunsFlowIntoGlobalRegistry)
{
    const uint64_t runs_before =
        MetricRegistry::global().counterValue("platform.runs");
    const uint64_t traced_before =
        MetricRegistry::global().counterValue("platform.traced_records");

    PlatformConfig config;
    Platform platform(config);
    const Workload w = randomWorkload(20, config.core);
    VectorTraceSink vec;
    tracedPmRun(platform, w, vec);

    EXPECT_EQ(MetricRegistry::global().counterValue("platform.runs"),
              runs_before + 1);
    EXPECT_EQ(MetricRegistry::global().counterValue(
                  "platform.traced_records"),
              traced_before + vec.records().size());
}

// Wall-clock trace overhead only measures something when the flush
// thread can overlap the producer: a single hardware thread (or an
// unknown count, which hardware_concurrency() reports as 0)
// serializes the flush work onto the producer's core.
TEST(Trace, WallOverheadMeaningfulNeedsSpareHardwareThread)
{
    EXPECT_FALSE(traceWallOverheadMeaningful(0));
    EXPECT_FALSE(traceWallOverheadMeaningful(1));
    EXPECT_TRUE(traceWallOverheadMeaningful(2));
    EXPECT_TRUE(traceWallOverheadMeaningful(64));
}

} // namespace
