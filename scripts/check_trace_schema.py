#!/usr/bin/env python3
"""Validate an aapm interval-trace file (JSONL or CSV) against the
published schema.

Usage: check_trace_schema.py TRACE_FILE [TRACE_FILE...]

Checks, per file:
  * the header declares trace-format version 1 and the exact field list
  * every record carries every field, with sane types
  * interval indexes are strictly increasing and congruent to 0 modulo
    the header's `every` stride
  * the footer's record count matches the records actually present

Exit status 0 when every file passes, 1 otherwise. Used by the CI
trace-smoke step; keep the FIELDS list in sync with traceFieldNames()
in src/obs/trace.cc.
"""

import json
import sys

FIELDS = [
    "i", "t_tick", "dt_s", "cycles", "ipc", "dpc", "dcu", "util",
    "measured_w", "temp_c", "pstate", "last_actuation", "true_w",
    "true_ipc", "true_dpc", "die_temp_c", "pred_valid", "pred_w",
    "proj_ipc", "mem_class", "decided", "decision", "actuation",
    "stall_ticks", "fallback", "blind", "substitutions",
]

HEADER_KEYS = {"aapm_trace", "workload", "governor", "interval_ticks",
               "every", "pstates", "fields"}

OUTCOMES = {"unchanged", "applied", "deferred", "rejected", "stuck"}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def check_record_indexes(path, indexes, every):
    prev = None
    for i in indexes:
        if every and i % every != 0:
            return fail(path, f"record index {i} not a multiple of "
                              f"every={every}")
        if prev is not None and i <= prev:
            return fail(path, f"record indexes not increasing at {i}")
        prev = i
    return True


def check_jsonl(path, lines):
    if not lines:
        return fail(path, "empty trace")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        return fail(path, f"header is not JSON: {e}")
    if header.get("aapm_trace") != 1:
        return fail(path, "missing or unsupported aapm_trace version")
    if not HEADER_KEYS.issubset(header):
        return fail(path, f"header missing {HEADER_KEYS - set(header)}")
    if header["fields"] != FIELDS:
        return fail(path, "header field list disagrees with schema")

    try:
        footer = json.loads(lines[-1])
    except json.JSONDecodeError as e:
        return fail(path, f"footer is not JSON: {e}")
    if "aapm_trace_end" not in footer or "records" not in footer:
        return fail(path, "missing footer (truncated trace?)")

    records = lines[1:-1]
    if footer["records"] != len(records):
        return fail(path, f"footer declares {footer['records']} records "
                          f"but {len(records)} are present")
    indexes = []
    for n, line in enumerate(records, start=2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(path, f"line {n}: not JSON: {e}")
        missing = [f for f in FIELDS if f not in rec]
        if missing:
            return fail(path, f"line {n}: missing fields {missing}")
        for key in ("last_actuation", "actuation"):
            if rec[key].lower() not in OUTCOMES:
                return fail(path, f"line {n}: bad outcome "
                                  f"{key}={rec[key]!r}")
        for key in ("pred_valid", "decided", "fallback", "blind"):
            if not isinstance(rec[key], bool):
                return fail(path, f"line {n}: {key} is not a bool")
        indexes.append(rec["i"])
    return check_record_indexes(path, indexes, header["every"])


def check_csv(path, lines):
    if not lines or not lines[0].startswith("# aapm-trace 1"):
        return fail(path, "missing '# aapm-trace 1' header")
    meta = {}
    body = []
    end = None
    for line in lines[1:]:
        if line.startswith("# end "):
            end = line.split()[2:]
        elif line.startswith("# "):
            key, _, value = line[2:].partition(" ")
            meta[key] = value
        elif line:
            body.append(line)
    for key in ("workload", "governor", "interval_ticks", "every",
                "pstates"):
        if key not in meta:
            return fail(path, f"missing '# {key}' metadata line")
    if end is None or len(end) != 2:
        return fail(path, "missing '# end <tick> <records>' trailer")
    if not body:
        return fail(path, "no column header row")
    if body[0].split(",") != FIELDS:
        return fail(path, "column header disagrees with schema")
    rows = body[1:]
    if int(end[1]) != len(rows):
        return fail(path, f"trailer declares {end[1]} rows but "
                          f"{len(rows)} are present")
    indexes = []
    for n, row in enumerate(rows, start=1):
        cells = row.split(",")
        if len(cells) != len(FIELDS):
            return fail(path, f"row {n}: {len(cells)} cells, expected "
                              f"{len(FIELDS)}")
        indexes.append(int(cells[0]))
    return check_record_indexes(path, indexes, int(meta["every"]))


def check(path):
    try:
        with open(path, encoding="utf-8") as f:
            lines = [line.rstrip("\n") for line in f]
    except OSError as e:
        return fail(path, str(e))
    if path.endswith(".csv"):
        ok = check_csv(path, lines)
    else:
        ok = check_jsonl(path, lines)
    if ok:
        n = len(lines) - 2
        print(f"{path}: OK ({n} records)" if not path.endswith(".csv")
              else f"{path}: OK")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    return 0 if all([check(p) for p in argv[1:]]) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
