#!/usr/bin/env python3
"""Validate an aapm interval-trace file (JSONL or CSV) against the
published schema.

Usage: check_trace_schema.py [--cluster] TRACE_FILE [TRACE_FILE...]
       check_trace_schema.py --cluster BASE_PATH
       check_trace_schema.py --requests REQUEST_LOG [REQUEST_LOG...]

Checks, per file:
  * the header declares trace-format version 1 and the exact field list
  * the header carries the core identity (`core` id and `cores` count,
    0/1 for a standalone run) and the id is within the count
  * every record carries every field, with sane types
  * interval indexes are strictly increasing and congruent to 0 modulo
    the header's `every` stride
  * the footer's record count matches the records actually present

With --cluster, the given files must additionally form one lockstep
cluster run: `cores` equals the file count in every header, the `core`
ids cover 0..N-1 exactly once, every file shares the same
interval_ticks and every stride, and every non-empty trace starts at
interval 0 (the cluster steps all cores from the same tick). Record
counts may differ between cores — an allocator that splits the budget
unevenly makes cores retire their workloads at different speeds, so
the faster ones stop tracing an interval or two early.

With --requests, the files are per-request serving logs as written by
`aapm serve --requests-out` (writeRequestLog in src/serve/serving.cc):
a header object declaring `aapm_requests` version 1, the SLO and the
request classes; one record per request in arrival order with
sequential ids; and an `aapm_requests_end` trailer whose completed and
dropped counts must match the records. Per record, the accounting must
be internally consistent — a dropped request never completes, a
completion never precedes its arrival, and `slo_ok` agrees with the
latency judged against the header's SLO.

A single --cluster argument naming a file that does not exist is
treated as the base path handed to `aapm cluster --trace-out`: the
tool writes one trace per core by inserting `.core<N>` before the
extension (`trace.jsonl` -> `trace.core3.jsonl`), so the base path is
expanded to every matching `.core*` sibling, ordered numerically by
core id. Numeric ordering matters once the cluster reaches three-digit
core counts — a lexical glob sorts core100 before core2, which would
break the 0..N-1 coverage check's pairing of path and id.

Exit status 0 when every file passes, 1 otherwise. Used by the CI
trace-smoke step; keep the FIELDS list in sync with traceFieldNames()
in src/obs/trace.cc.
"""

import glob
import json
import os
import re
import sys

FIELDS = [
    "i", "t_tick", "dt_s", "cycles", "ipc", "dpc", "dcu", "util",
    "measured_w", "temp_c", "pstate", "last_actuation", "true_w",
    "true_ipc", "true_dpc", "die_temp_c", "pred_valid", "pred_w",
    "proj_ipc", "mem_class", "decided", "decision", "actuation",
    "stall_ticks", "fallback", "blind", "substitutions", "idle_s",
    "cstate",
]

HEADER_KEYS = {"aapm_trace", "workload", "governor", "interval_ticks",
               "every", "pstates", "core", "cores", "fields"}

CSV_META_KEYS = ("workload", "governor", "interval_ticks", "every",
                 "pstates", "core", "cores")

OUTCOMES = {"unchanged", "applied", "deferred", "rejected", "stuck"}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return None


def check_record_indexes(path, indexes, every):
    prev = None
    for i in indexes:
        if every and i % every != 0:
            return fail(path, f"record index {i} not a multiple of "
                              f"every={every}")
        if prev is not None and i <= prev:
            return fail(path, f"record indexes not increasing at {i}")
        prev = i
    return True


def check_core_identity(path, core, cores):
    if cores < 1:
        return fail(path, f"cores={cores} must be >= 1")
    if not 0 <= core < cores:
        return fail(path, f"core={core} outside 0..{cores - 1}")
    return True


def check_jsonl(path, lines):
    """Return a header-info dict on success, None on failure."""
    if not lines:
        return fail(path, "empty trace")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        return fail(path, f"header is not JSON: {e}")
    if header.get("aapm_trace") != 1:
        return fail(path, "missing or unsupported aapm_trace version")
    if not HEADER_KEYS.issubset(header):
        return fail(path, f"header missing {HEADER_KEYS - set(header)}")
    if header["fields"] != FIELDS:
        return fail(path, "header field list disagrees with schema")
    if check_core_identity(path, header["core"], header["cores"]) is None:
        return None

    try:
        footer = json.loads(lines[-1])
    except json.JSONDecodeError as e:
        return fail(path, f"footer is not JSON: {e}")
    if "aapm_trace_end" not in footer or "records" not in footer:
        return fail(path, "missing footer (truncated trace?)")

    records = lines[1:-1]
    if footer["records"] != len(records):
        return fail(path, f"footer declares {footer['records']} records "
                          f"but {len(records)} are present")
    indexes = []
    for n, line in enumerate(records, start=2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(path, f"line {n}: not JSON: {e}")
        missing = [f for f in FIELDS if f not in rec]
        if missing:
            return fail(path, f"line {n}: missing fields {missing}")
        for key in ("last_actuation", "actuation"):
            if rec[key].lower() not in OUTCOMES:
                return fail(path, f"line {n}: bad outcome "
                                  f"{key}={rec[key]!r}")
        for key in ("pred_valid", "decided", "fallback", "blind"):
            if not isinstance(rec[key], bool):
                return fail(path, f"line {n}: {key} is not a bool")
        indexes.append(rec["i"])
    if check_record_indexes(path, indexes, header["every"]) is None:
        return None
    return {"core": header["core"], "cores": header["cores"],
            "interval_ticks": header["interval_ticks"],
            "every": header["every"], "records": len(records),
            "first": indexes[0] if indexes else None}


def check_csv(path, lines):
    """Return a header-info dict on success, None on failure."""
    if not lines or not lines[0].startswith("# aapm-trace 1"):
        return fail(path, "missing '# aapm-trace 1' header")
    meta = {}
    body = []
    end = None
    for line in lines[1:]:
        if line.startswith("# end "):
            end = line.split()[2:]
        elif line.startswith("# "):
            key, _, value = line[2:].partition(" ")
            meta[key] = value
        elif line:
            body.append(line)
    for key in CSV_META_KEYS:
        if key not in meta:
            return fail(path, f"missing '# {key}' metadata line")
    if check_core_identity(path, int(meta["core"]),
                           int(meta["cores"])) is None:
        return None
    if end is None or len(end) != 2:
        return fail(path, "missing '# end <tick> <records>' trailer")
    if not body:
        return fail(path, "no column header row")
    if body[0].split(",") != FIELDS:
        return fail(path, "column header disagrees with schema")
    rows = body[1:]
    if int(end[1]) != len(rows):
        return fail(path, f"trailer declares {end[1]} rows but "
                          f"{len(rows)} are present")
    indexes = []
    for n, row in enumerate(rows, start=1):
        cells = row.split(",")
        if len(cells) != len(FIELDS):
            return fail(path, f"row {n}: {len(cells)} cells, expected "
                              f"{len(FIELDS)}")
        indexes.append(int(cells[0]))
    if check_record_indexes(path, indexes, int(meta["every"])) is None:
        return None
    return {"core": int(meta["core"]), "cores": int(meta["cores"]),
            "interval_ticks": int(meta["interval_ticks"]),
            "every": int(meta["every"]), "records": len(rows),
            "first": indexes[0] if indexes else None}


REQUEST_FIELDS = ["id", "class", "core", "arrival_s", "complete_s",
                  "latency_s", "dropped", "slo_ok"]


def check_requests(path):
    """Validate one per-request serving log; True on success."""
    try:
        with open(path, encoding="utf-8") as f:
            lines = [line.rstrip("\n") for line in f if line.strip()]
    except OSError as e:
        return fail(path, str(e)) is not None
    if len(lines) < 2:
        return fail(path, "missing header or trailer") is not None
    try:
        header = json.loads(lines[0])
        trailer = json.loads(lines[-1])
    except json.JSONDecodeError as e:
        return fail(path, f"header/trailer not JSON: {e}") is not None
    if header.get("aapm_requests") != 1:
        return fail(path, "missing or unsupported aapm_requests "
                          "version") is not None
    slo = header.get("slo_s")
    classes = header.get("classes")
    if not isinstance(slo, (int, float)) or slo <= 0:
        return fail(path, f"bad slo_s {slo!r}") is not None
    if not isinstance(classes, list) or not classes:
        return fail(path, "missing request classes") is not None
    if "aapm_requests_end" not in trailer:
        return fail(path, "missing trailer (truncated log?)") \
               is not None

    rows = lines[1:-1]
    if header.get("offered") != len(rows):
        return fail(path, f"header offers {header.get('offered')} "
                          f"requests but {len(rows)} are present") \
               is not None
    completed = dropped = 0
    for n, line in enumerate(rows, start=2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(path, f"line {n}: not JSON: {e}") is not None
        missing = [f for f in REQUEST_FIELDS if f not in rec]
        if missing:
            return fail(path, f"line {n}: missing fields {missing}") \
                   is not None
        if rec["id"] != n - 2:
            return fail(path, f"line {n}: id {rec['id']} breaks the "
                              f"sequential arrival order") is not None
        if not 0 <= rec["class"] < len(classes):
            return fail(path, f"line {n}: class {rec['class']} outside "
                              f"the {len(classes)}-class mix") \
                   is not None
        if rec["dropped"] not in (0, 1) or rec["slo_ok"] not in (0, 1):
            return fail(path, f"line {n}: dropped/slo_ok not 0/1") \
                   is not None
        done = rec["complete_s"] >= 0
        if rec["dropped"] and done:
            return fail(path, f"line {n}: dropped request completed") \
                   is not None
        if done and rec["complete_s"] < rec["arrival_s"]:
            return fail(path, f"line {n}: completion precedes "
                              f"arrival") is not None
        ok = 1 if done and rec["latency_s"] <= slo else 0
        if rec["slo_ok"] != ok:
            return fail(path, f"line {n}: slo_ok={rec['slo_ok']} "
                              f"disagrees with latency "
                              f"{rec['latency_s']} vs slo {slo}") \
                   is not None
        completed += done
        dropped += rec["dropped"]
    if trailer.get("completed") != completed or \
       trailer.get("dropped") != dropped:
        return fail(path, f"trailer counts ({trailer.get('completed')} "
                          f"completed, {trailer.get('dropped')} "
                          f"dropped) disagree with the records "
                          f"({completed}, {dropped})") is not None
    print(f"{path}: OK ({len(rows)} requests, {completed} completed, "
          f"{dropped} dropped)")
    return True


def check(path):
    try:
        with open(path, encoding="utf-8") as f:
            lines = [line.rstrip("\n") for line in f]
    except OSError as e:
        return fail(path, str(e))
    if path.endswith(".csv"):
        info = check_csv(path, lines)
    else:
        info = check_jsonl(path, lines)
    if info is not None:
        print(f"{path}: OK ({info['records']} records, "
              f"core {info['core']}/{info['cores']})")
    return info


def check_cluster(paths, infos):
    """The files together must describe one lockstep cluster run."""
    ok = True
    n = len(paths)
    seen = {}
    for path, info in zip(paths, infos):
        if info["cores"] != n:
            ok = fail(path, f"header says cores={info['cores']} but "
                            f"{n} trace files were given") is not None
        if info["core"] in seen:
            ok = fail(path, f"core id {info['core']} already used by "
                            f"{seen[info['core']]}") is not None
        seen[info["core"]] = path
        for key in ("interval_ticks", "every"):
            if info[key] != infos[0][key]:
                ok = fail(path, f"{key}={info[key]} disagrees with "
                                f"{paths[0]}'s {infos[0][key]}") \
                     is not None
        # Lockstep means a common start, not a common end: every core
        # steps from interval 0, but an uneven budget split lets the
        # faster cores retire their workloads (and stop tracing) a few
        # intervals before the slowest one.
        if info["records"] and info["first"] != 0:
            ok = fail(path, f"first record at interval {info['first']}"
                            f", expected 0 (lockstep start)") \
                 is not None
    if sorted(seen) != list(range(n)):
        ok = fail(paths[0], f"core ids {sorted(seen)} do not cover "
                            f"0..{n - 1}") is not None
    if ok:
        lo = min(i["records"] for i in infos)
        hi = max(i["records"] for i in infos)
        span = str(lo) if lo == hi else f"{lo}..{hi}"
        print(f"cluster: OK ({n} cores, {span} records per core)")
    return ok


def expand_cluster_base(base):
    """Expand a `--trace-out` base path to its per-core trace files.

    Mirrors corePath() in tools/aapm.cc: `.core<N>` goes before the
    final extension, or is appended when the basename has none. Returns
    the matches sorted numerically by core id, or None (with a message)
    when nothing matches.
    """
    root, ext = os.path.splitext(base)
    if "/" in ext:  # the only dot was in a directory component
        root, ext = base, ""
    pattern = re.compile(re.escape(os.path.basename(root)) +
                         r"\.core(\d+)" + re.escape(ext) + r"$")
    found = []
    for path in glob.glob(glob.escape(root) + ".core*" + glob.escape(ext)):
        m = pattern.match(os.path.basename(path))
        if m:
            found.append((int(m.group(1)), path))
    if not found:
        return fail(base, "no per-core traces match "
                          f"{root}.core*{ext}")
    return [path for _, path in sorted(found)]


def main(argv):
    args = argv[1:]
    cluster = False
    requests = False
    if args and args[0] == "--cluster":
        cluster = True
        args = args[1:]
    elif args and args[0] == "--requests":
        requests = True
        args = args[1:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    if requests:
        return 0 if all([check_requests(p) for p in args]) else 1
    if cluster and len(args) == 1 and not os.path.exists(args[0]):
        args = expand_cluster_base(args[0])
        if args is None:
            return 1
    infos = [check(p) for p in args]
    if not all(info is not None for info in infos):
        return 1
    if cluster and not check_cluster(args, infos):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
