#!/usr/bin/env bash
# Build, test and regenerate every experiment — the repository's full
# verification pass. Outputs land in test_output.txt / bench_output.txt
# at the repo root (and CSV series in bench_csv/ if requested).
#
# Usage: scripts/run_all.sh [--csv] [--seconds N] [--jobs N]
#   --jobs N   worker threads for the experiment engine (exported as
#              AAPM_JOBS; default: all hardware threads; 1 = the
#              legacy serial path)
set -euo pipefail
cd "$(dirname "$0")/.."

SECONDS_OPT=12
CSV=0
JOBS=""
while [[ $# -gt 0 ]]; do
    case "$1" in
      --csv) CSV=1 ;;
      --seconds) SECONDS_OPT="$2"; shift ;;
      --jobs) JOBS="$2"; shift ;;
      *) echo "unknown option $1" >&2; exit 2 ;;
    esac
    shift
done

# Prefer Ninja when available; otherwise fall back to the default
# generator (an existing build tree keeps whatever it was made with).
GEN=()
if [[ ! -f build/CMakeCache.txt ]] && command -v ninja >/dev/null 2>&1; then
    GEN=(-G Ninja)
fi
cmake -B build "${GEN[@]}"
cmake --build build -j"$(nproc)"

ctest --test-dir build -j"$(nproc)" 2>&1 | tee test_output.txt

export AAPM_SECONDS="$SECONDS_OPT"
# Train once, reuse across every harness in the loop below.
export AAPM_MODEL_CACHE="$PWD/build/aapm.models.cache"
if [[ -n "$JOBS" ]]; then
    export AAPM_JOBS="$JOBS"
fi
if [[ "$CSV" == 1 ]]; then
    export AAPM_CSV_DIR="$PWD/bench_csv"
fi

{
    for b in build/bench/bench_*; do
        [[ -f "$b" && -x "$b" ]] || continue
        echo "===== $b ====="
        "$b"
        echo
    done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
