#!/usr/bin/env bash
# Build, test and regenerate every experiment — the repository's full
# verification pass. Outputs land in test_output.txt / bench_output.txt
# at the repo root (and CSV series in bench_csv/ if requested).
#
# Usage: scripts/run_all.sh [--csv] [--seconds N]
set -euo pipefail
cd "$(dirname "$0")/.."

SECONDS_OPT=12
CSV=0
while [[ $# -gt 0 ]]; do
    case "$1" in
      --csv) CSV=1 ;;
      --seconds) SECONDS_OPT="$2"; shift ;;
      *) echo "unknown option $1" >&2; exit 2 ;;
    esac
    shift
done

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build -j"$(nproc)" 2>&1 | tee test_output.txt

export AAPM_SECONDS="$SECONDS_OPT"
if [[ "$CSV" == 1 ]]; then
    export AAPM_CSV_DIR="$PWD/bench_csv"
fi

{
    for b in build/bench/*; do
        echo "===== $b ====="
        "$b"
        echo
    done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
