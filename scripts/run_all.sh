#!/usr/bin/env bash
# Build, test and regenerate every experiment — the repository's full
# verification pass. Outputs land in test_output.txt / bench_output.txt
# at the repo root (and CSV series in bench_csv/ if requested).
#
# Usage: scripts/run_all.sh [--csv] [--seconds N] [--jobs N] [--sanitize]
#   --jobs N     worker threads for the experiment engine (exported as
#                AAPM_JOBS; default: all hardware threads; 1 = the
#                legacy serial path)
#   --sanitize   build the asan-ubsan CMake preset into build-asan/ and
#                run the tier-1 test suite under it, then exit
set -euo pipefail
cd "$(dirname "$0")/.."

SECONDS_OPT=12
CSV=0
JOBS=""
SANITIZE=0
while [[ $# -gt 0 ]]; do
    case "$1" in
      --csv) CSV=1 ;;
      --seconds) SECONDS_OPT="$2"; shift ;;
      --jobs) JOBS="$2"; shift ;;
      --sanitize) SANITIZE=1 ;;
      *) echo "unknown option $1" >&2; exit 2 ;;
    esac
    shift
done

if [[ "$SANITIZE" == 1 ]]; then
    cmake --preset asan-ubsan
    cmake --build build-asan -j"$(nproc)"
    # Leak checking needs ptrace, which sandboxed CI containers often
    # deny; ASan's memory-error and UBSan checks are the point here.
    ASAN_OPTIONS=detect_leaks=0 \
        ctest --test-dir build-asan -j"$(nproc)" 2>&1 \
        | tee sanitize_output.txt
    # Trace smoke under the sanitizers: the tracer's serialization and
    # parsing paths run end-to-end through the CLI.
    if command -v python3 >/dev/null 2>&1; then
        ASAN_OPTIONS=detect_leaks=0 \
            build-asan/tools/aapm run --workload ammp --paper-models \
            --seconds 1 --trace-out build-asan/trace_smoke.jsonl \
            >/dev/null
        python3 scripts/check_trace_schema.py \
            build-asan/trace_smoke.jsonl
        # Binary sink + converter under the sanitizers: the columnar
        # append, flush thread and block decoder run end-to-end.
        ASAN_OPTIONS=detect_leaks=0 \
            build-asan/tools/aapm run --workload ammp --paper-models \
            --seconds 1 --trace-out build-asan/trace_smoke.bin \
            >/dev/null
        ASAN_OPTIONS=detect_leaks=0 \
            build-asan/tools/aapm trace-convert \
            --in build-asan/trace_smoke.bin \
            --out build-asan/trace_smoke_conv.jsonl >/dev/null
        python3 scripts/check_trace_schema.py \
            build-asan/trace_smoke_conv.jsonl
        cmp build-asan/trace_smoke.jsonl \
            build-asan/trace_smoke_conv.jsonl
        # Cluster smoke under the sanitizers: lockstep stepping, the
        # allocator, and per-core trace identity.
        ASAN_OPTIONS=detect_leaks=0 \
            build-asan/tools/aapm run --workload gzip --cluster 2 \
            --budget 24 --allocator demand --paper-models --seconds 1 \
            --trace-out build-asan/cluster_smoke.jsonl >/dev/null
        python3 scripts/check_trace_schema.py --cluster \
            build-asan/cluster_smoke.core0.jsonl \
            build-asan/cluster_smoke.core1.jsonl
        # Shared-flush-thread cluster binary path under the sanitizers.
        ASAN_OPTIONS=detect_leaks=0 \
            build-asan/tools/aapm run --workload gzip --cluster 2 \
            --budget 24 --allocator demand --paper-models --seconds 1 \
            --trace-out build-asan/cluster_smoke.bin >/dev/null
        ASAN_OPTIONS=detect_leaks=0 \
            build-asan/tools/aapm trace-convert \
            --in build-asan/cluster_smoke.bin \
            --out build-asan/cluster_smoke_conv.jsonl --cluster 0 \
            >/dev/null
        python3 scripts/check_trace_schema.py --cluster \
            build-asan/cluster_smoke_conv.core0.jsonl \
            build-asan/cluster_smoke_conv.core1.jsonl
        # Sharded-cluster smoke: 256 cores under a budget tree drives
        # the two-phase step/allocate barrier and the heap water-fill
        # through the sanitizers; the checker expands the base path to
        # all 256 per-core traces and verifies the lockstep identity.
        ASAN_OPTIONS=detect_leaks=0 \
            build-asan/tools/aapm run --workload gzip --cluster 256 \
            --budget 2560 --topology 4x8x8 \
            --allocator uniform,demand,greedy --paper-models \
            --seconds 0.3 --trace-out build-asan/shard_smoke.jsonl \
            --trace-every 4 >/dev/null
        python3 scripts/check_trace_schema.py --cluster \
            build-asan/shard_smoke.jsonl
    fi
    # Cluster-resilience smoke under the sanitizers: a correlated
    # domain-fault plan must drive the ClusterSupervisor's quarantine
    # loop (nonzero counters), and an inert plan must leave it silent.
    ASAN_OPTIONS=detect_leaks=0 \
        build-asan/tools/aapm run --workload gzip --cluster 256 \
        --budget 2560 --topology 4x8x8 \
        --allocator uniform,demand,greedy --paper-models \
        --seconds 0.6 --supervise --cluster-fault-plan \
        "node[3]@0.05:sensor-brownout:30;rack[1]@0.1:dvfs-stuck:25;socket[9]@0.1:budget-drop:20:0.5" \
        > build-asan/resilience_smoke.txt
    grep -E "resilience quarantines=[1-9]" \
        build-asan/resilience_smoke.txt
    ASAN_OPTIONS=detect_leaks=0 \
        build-asan/tools/aapm run --workload gzip --cluster 256 \
        --budget 2560 --topology 4x8x8 \
        --allocator uniform,demand,greedy --paper-models \
        --seconds 0.6 --supervise --cluster-fault-plan none \
        > build-asan/resilience_inert_smoke.txt
    grep -E "resilience quarantines=0 quarantined-intervals=0" \
        build-asan/resilience_inert_smoke.txt
    # Serving smoke under the sanitizers: the traffic generator, the
    # request scheduler's step hook and the per-request log run
    # end-to-end; two same-seed runs at different pool widths must
    # report identical tail latencies and complete requests.
    ASAN_OPTIONS=detect_leaks=0 \
        build-asan/tools/aapm serve --cluster 64 --budget 448 \
        --paper-models --rate 4000 --seconds 0.3 --serve-seed 42 \
        --requests-out build-asan/serve_smoke.jsonl \
        > build-asan/serve_a.txt
    ASAN_OPTIONS=detect_leaks=0 AAPM_JOBS=1 \
        build-asan/tools/aapm serve --cluster 64 --budget 448 \
        --paper-models --rate 4000 --seconds 0.3 --serve-seed 42 \
        > build-asan/serve_b.txt
    grep "^serving offered=" build-asan/serve_a.txt \
        > build-asan/serve_line_a.txt
    grep "^serving offered=" build-asan/serve_b.txt \
        > build-asan/serve_line_b.txt
    cmp build-asan/serve_line_a.txt build-asan/serve_line_b.txt
    grep -E "serving offered=[0-9]+ completed=[1-9]" \
        build-asan/serve_line_a.txt
    if command -v python3 >/dev/null 2>&1; then
        python3 scripts/check_trace_schema.py --requests \
            build-asan/serve_smoke.jsonl
    fi
    # Idle-serving smoke under the sanitizers: the c-state ladder,
    # RACE's sprint/crawl split and the platform's sleep/wake stepping
    # run end-to-end; same-seed runs at different pool widths must
    # agree, and the cores must actually sleep (nonzero sleep_s).
    ASAN_OPTIONS=detect_leaks=0 \
        build-asan/tools/aapm serve --cluster 64 --budget 448 \
        --paper-models --rate 2560 --seconds 0.3 --arrival bursty \
        --serve-seed 42 --governor race \
        --c-states "C1:0.4W:2us;C6:0.05W:150us" \
        > build-asan/idle_a.txt
    ASAN_OPTIONS=detect_leaks=0 AAPM_JOBS=1 \
        build-asan/tools/aapm serve --cluster 64 --budget 448 \
        --paper-models --rate 2560 --seconds 0.3 --arrival bursty \
        --serve-seed 42 --governor race \
        --c-states "C1:0.4W:2us;C6:0.05W:150us" \
        > build-asan/idle_b.txt
    grep "^serving offered=" build-asan/idle_a.txt \
        > build-asan/idle_line_a.txt
    grep "^serving offered=" build-asan/idle_b.txt \
        > build-asan/idle_line_b.txt
    cmp build-asan/idle_line_a.txt build-asan/idle_line_b.txt
    grep -E "serving offered=[0-9]+ completed=[1-9]" \
        build-asan/idle_line_a.txt
    grep -vq "sleep_s=0\.000000" build-asan/idle_line_a.txt
    echo "done: sanitize_output.txt"
    exit 0
fi

# Prefer Ninja when available; otherwise fall back to the default
# generator (an existing build tree keeps whatever it was made with).
GEN=()
if [[ ! -f build/CMakeCache.txt ]] && command -v ninja >/dev/null 2>&1; then
    GEN=(-G Ninja)
fi
cmake -B build "${GEN[@]}"
cmake --build build -j"$(nproc)"

ctest --test-dir build -j"$(nproc)" 2>&1 | tee test_output.txt

# Trace smoke: a short traced PM run must produce schema-conformant
# JSONL/CSV (skipped quietly when python3 is unavailable).
if command -v python3 >/dev/null 2>&1; then
    build/tools/aapm run --workload ammp --paper-models --seconds 1 \
        --trace-out build/trace_smoke.jsonl >/dev/null
    build/tools/aapm run --workload ammp --paper-models --seconds 1 \
        --trace-out build/trace_smoke.csv --trace-every 4 >/dev/null
    python3 scripts/check_trace_schema.py \
        build/trace_smoke.jsonl build/trace_smoke.csv
    # Binary trace smoke: the columnar sink plus the converter must
    # reproduce a schema-conformant JSONL stream bit-for-bit.
    build/tools/aapm run --workload ammp --paper-models --seconds 1 \
        --trace-out build/trace_smoke.bin >/dev/null
    build/tools/aapm trace-convert --in build/trace_smoke.bin \
        --out build/trace_smoke_converted.jsonl >/dev/null
    python3 scripts/check_trace_schema.py \
        build/trace_smoke_converted.jsonl
    cmp build/trace_smoke.jsonl build/trace_smoke_converted.jsonl
    # Cluster smoke: per-core traces must carry the cluster identity
    # and agree on record counts (lockstep, same workload per core).
    build/tools/aapm run --workload gzip --cluster 2 --budget 24 \
        --allocator demand --paper-models --seconds 1 \
        --trace-out build/cluster_smoke.jsonl >/dev/null
    python3 scripts/check_trace_schema.py --cluster \
        build/cluster_smoke.core0.jsonl build/cluster_smoke.core1.jsonl
    # Cluster binary smoke: per-core binary sinks share one flush
    # thread; the converter expands the base path over every core.
    build/tools/aapm run --workload gzip --cluster 2 --budget 24 \
        --allocator demand --paper-models --seconds 1 \
        --trace-out build/cluster_smoke.bin >/dev/null
    build/tools/aapm trace-convert --in build/cluster_smoke.bin \
        --out build/cluster_smoke_conv.jsonl --cluster 0 >/dev/null
    python3 scripts/check_trace_schema.py --cluster \
        build/cluster_smoke_conv.core0.jsonl \
        build/cluster_smoke_conv.core1.jsonl
    # Sharded-cluster smoke: 256 cores across a rack/node/socket budget
    # tree (uniform/demand/greedy per level), stepping through the
    # ThreadPool shards. A single base path expands to the 256 per-core
    # traces, which must cover core ids 0..255 and share the cluster
    # clock.
    build/tools/aapm run --workload gzip --cluster 256 --budget 2560 \
        --topology 4x8x8 --allocator uniform,demand,greedy \
        --paper-models --seconds 0.3 \
        --trace-out build/shard_smoke.jsonl --trace-every 4 >/dev/null
    python3 scripts/check_trace_schema.py --cluster \
        build/shard_smoke.jsonl
fi

# Cluster-resilience smoke: a correlated domain-fault plan on 256
# cores must drive the ClusterSupervisor's quarantine loop (nonzero
# counters on the parseable `resilience ...` line), and an inert plan
# under the same supervisor must leave every counter at zero.
build/tools/aapm run --workload gzip --cluster 256 --budget 2560 \
    --topology 4x8x8 --allocator uniform,demand,greedy \
    --paper-models --seconds 0.6 --supervise --cluster-fault-plan \
    "node[3]@0.05:sensor-brownout:30;rack[1]@0.1:dvfs-stuck:25;socket[9]@0.1:budget-drop:20:0.5" \
    > build/resilience_smoke.txt
grep -E "resilience quarantines=[1-9]" build/resilience_smoke.txt
build/tools/aapm run --workload gzip --cluster 256 --budget 2560 \
    --topology 4x8x8 --allocator uniform,demand,greedy \
    --paper-models --seconds 0.6 --supervise --cluster-fault-plan none \
    > build/resilience_inert_smoke.txt
grep -E "resilience quarantines=0 quarantined-intervals=0" \
    build/resilience_inert_smoke.txt

# Serving smoke: seeded open-loop traffic on a 64-core capped cluster
# must complete requests and report bit-identical tail latencies on
# the parseable `serving ...` line across pool widths; the request
# log must pass the schema checker.
build/tools/aapm serve --cluster 64 --budget 448 --paper-models \
    --rate 4000 --seconds 0.3 --serve-seed 42 \
    --requests-out build/serve_smoke.jsonl > build/serve_a.txt
AAPM_JOBS=1 build/tools/aapm serve --cluster 64 --budget 448 \
    --paper-models --rate 4000 --seconds 0.3 --serve-seed 42 \
    > build/serve_b.txt
grep "^serving offered=" build/serve_a.txt > build/serve_line_a.txt
grep "^serving offered=" build/serve_b.txt > build/serve_line_b.txt
cmp build/serve_line_a.txt build/serve_line_b.txt
grep -E "serving offered=[0-9]+ completed=[1-9]" build/serve_line_a.txt
if command -v python3 >/dev/null 2>&1; then
    python3 scripts/check_trace_schema.py --requests \
        build/serve_smoke.jsonl
fi

# Idle-serving smoke: bursty traffic on a race-governed cluster with a
# two-deep c-state ladder must stay deterministic across pool widths
# and actually put cores to sleep (nonzero sleep_s on the parseable
# line).
build/tools/aapm serve --cluster 64 --budget 448 --paper-models \
    --rate 2560 --seconds 0.3 --arrival bursty --serve-seed 42 \
    --governor race --c-states "C1:0.4W:2us;C6:0.05W:150us" \
    > build/idle_a.txt
AAPM_JOBS=1 build/tools/aapm serve --cluster 64 --budget 448 \
    --paper-models --rate 2560 --seconds 0.3 --arrival bursty \
    --serve-seed 42 --governor race \
    --c-states "C1:0.4W:2us;C6:0.05W:150us" > build/idle_b.txt
grep "^serving offered=" build/idle_a.txt > build/idle_line_a.txt
grep "^serving offered=" build/idle_b.txt > build/idle_line_b.txt
cmp build/idle_line_a.txt build/idle_line_b.txt
grep -E "serving offered=[0-9]+ completed=[1-9]" build/idle_line_a.txt
grep -vq "sleep_s=0\.000000" build/idle_line_a.txt

export AAPM_SECONDS="$SECONDS_OPT"
# Train once, reuse across every harness in the loop below.
export AAPM_MODEL_CACHE="$PWD/build/aapm.models.cache"
if [[ -n "$JOBS" ]]; then
    export AAPM_JOBS="$JOBS"
fi
if [[ "$CSV" == 1 ]]; then
    export AAPM_CSV_DIR="$PWD/bench_csv"
fi

{
    for b in build/bench/bench_*; do
        [[ -f "$b" && -x "$b" ]] || continue
        echo "===== $b ====="
        "$b"
        echo
    done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
