/**
 * @file
 * Shared setup for the experiment harnesses: one platform
 * configuration, one trained model set, one suite build — plus the
 * helpers the figures share (normalized performance, violation
 * accounting).
 *
 * Environment knobs:
 *   AAPM_SECONDS      per-benchmark duration at 2 GHz (default 12).
 *   AAPM_CSV_DIR      if set, each harness also writes its series
 *                     there as <bench>.csv for external plotting.
 *   AAPM_JOBS         sweep concurrency (default: hardware threads);
 *                     1 forces the legacy serial path for debugging.
 *   AAPM_MODEL_CACHE  if set, trained models are persisted to this
 *                     file and reloaded on the next invocation,
 *                     skipping training entirely.
 */

#ifndef AAPM_BENCH_BENCH_UTIL_HH
#define AAPM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "aapm.hh"

namespace aapm_bench
{

using namespace aapm;

/** Per-benchmark target duration at full speed, seconds. */
inline double
targetSeconds()
{
    if (const char *env = std::getenv("AAPM_SECONDS")) {
        const double v = std::atof(env);
        if (v > 0.0)
            return v;
    }
    return 12.0;
}

/** Sweep concurrency: AAPM_JOBS, or every hardware thread. */
inline size_t
jobs()
{
    return ThreadPool::defaultJobs();
}

/** Everything the harnesses share. */
struct Bench
{
    PlatformConfig config;
    Platform platform{config};
    /** Trained once per process (and per cache file); shared by every
     *  worker thread as const. */
    const TrainedModels &models = sharedModels(config);
    std::vector<Workload> suite =
        specSuite(config.core, targetSeconds());
    /** The parallel experiment engine the harnesses sweep with. */
    SweepRunner sweep{config, jobs()};

    PowerEstimator
    powerEstimator() const
    {
        return models.powerEstimator(config.pstates);
    }

    PerfEstimator
    perfEstimator() const
    {
        return models.perfEstimator();
    }

    std::unique_ptr<PerformanceMaximizer>
    makePm(double limit_w) const
    {
        return std::make_unique<PerformanceMaximizer>(
            powerEstimator(), PmConfig{.powerLimitW = limit_w});
    }

    std::unique_ptr<PowerSave>
    makePs(double floor) const
    {
        return std::make_unique<PowerSave>(
            config.pstates, perfEstimator(), PsConfig{floor});
    }

    const Workload &
    workload(const std::string &name) const
    {
        for (const auto &w : suite) {
            if (w.name() == name)
                return w;
        }
        aapm_fatal("no workload '%s'", name.c_str());
    }
};

/** Lazily-constructed shared bench state (training is not free). */
inline Bench &
bench()
{
    static Bench b;
    return b;
}

/**
 * CSV sink for a harness's series; null unless AAPM_CSV_DIR is set.
 * The directory is created on demand.
 */
inline std::unique_ptr<CsvWriter>
maybeCsv(const std::string &bench_name)
{
    const char *dir = std::getenv("AAPM_CSV_DIR");
    if (!dir || !*dir)
        return nullptr;
    std::filesystem::create_directories(dir);
    return std::make_unique<CsvWriter>(
        std::string(dir) + "/" + bench_name + ".csv");
}

/** Dump a full trace (time, power, frequency, IPC, temp) to CSV. */
inline void
traceToCsv(CsvWriter &csv, const std::string &label,
           const PowerTrace &trace)
{
    for (const auto &s : trace.samples()) {
        csv.row({label, std::to_string(ticksToSeconds(s.when)),
                 std::to_string(s.measuredW), std::to_string(s.trueW),
                 std::to_string(s.freqMhz), std::to_string(s.ipc),
                 std::to_string(s.dpc), std::to_string(s.tempC)});
    }
}

/** The paper's eight PM power limits, Watts. */
inline std::vector<double>
paperPowerLimits()
{
    return {17.5, 16.5, 15.5, 14.5, 13.5, 12.5, 11.5, 10.5};
}

/** The paper's four PS performance floors. */
inline std::vector<double>
paperFloors()
{
    return {0.8, 0.6, 0.4, 0.2};
}

} // namespace aapm_bench

#endif // AAPM_BENCH_BENCH_UTIL_HH
