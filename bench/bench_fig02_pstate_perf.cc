/**
 * @file
 * Figure 2 reproduction: workload-specific performance impact of three
 * p-states (1600/1800/2000 MHz) for the paper's three exemplars —
 * memory-bound swim (flat), in-between gap, core-bound sixtrack
 * (linear in frequency).
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Fig 2 — performance across p-states, normalized to "
                "2000 MHz\n\n");

    const std::vector<double> freqs = {1600.0, 1800.0, 2000.0};

    TextTable t;
    t.header({"benchmark", "1600 MHz", "1800 MHz", "2000 MHz",
              "paper shape"});
    const std::vector<std::pair<std::string, std::string>> cases = {
        {"swim", "flat (memory-bound)"},
        {"gap", "in-between"},
        {"sixtrack", "linear (core-bound)"},
    };
    for (const auto &[name, shape] : cases) {
        const Workload &w = b.workload(name);
        double base_seconds = 0.0;
        std::vector<double> perf;
        for (double mhz : freqs) {
            const size_t idx = b.config.pstates.indexOfMhz(mhz);
            const RunResult r = b.platform.runAtPState(w, idx);
            if (mhz == 2000.0)
                base_seconds = r.seconds;
            perf.push_back(r.seconds);
        }
        t.row({name, TextTable::num(base_seconds / perf[0], 3),
               TextTable::num(base_seconds / perf[1], 3),
               TextTable::num(base_seconds / perf[2], 3), shape});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("expected: swim ~1.0 everywhere; sixtrack ~0.8/0.9/1.0;"
                " gap in between\n");
    return 0;
}
