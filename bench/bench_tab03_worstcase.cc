/**
 * @file
 * Table III reproduction: power of the worst-case workload (the
 * L2-resident FMA-256KB loop) at every p-state — the basis for the
 * static-clocking baseline's frequency choice.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    // Paper Table III.
    const std::vector<double> paper = {3.86, 5.21, 6.56, 8.16,
                                       10.16, 12.46, 15.29, 17.78};

    // Characterize the worst-case loop once, then solve the per-p-state
    // power/temperature fixed points concurrently (each is independent;
    // steadyPower only reads the platform).
    const LoopSpec worst{LoopKind::Fma, 256 * 1024};
    const Phase phase = characterizeLoop(worst, b.config.hierarchy,
                                         b.config.core, 1'000'000);
    std::vector<double> ours(b.config.pstates.size());
    b.sweep.pool().parallelFor(ours.size(), [&](size_t i) {
        ours[i] = b.platform.steadyPower(phase, i);
    });

    std::printf("Table III — worst-case (FMA-256KB) power vs "
                "frequency\n\n");
    TextTable t;
    t.header({"freq (MHz)", "measured (W)", "paper (W)"});
    for (size_t i = 0; i < b.config.pstates.size(); ++i) {
        t.row({TextTable::num(b.config.pstates[i].freqMhz, 0),
               TextTable::num(ours[i], 2), TextTable::num(paper[i], 2)});
    }
    std::printf("%s\n", t.str().c_str());
    return 0;
}
