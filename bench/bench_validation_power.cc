/**
 * @file
 * Power-model accuracy across the suite — the paper's model-quality
 * claim made quantitative. For every benchmark at 2 GHz, the trained
 * DPC model is scored per 10 ms sample against the measured power:
 * program-average bias (where prior work stopped) versus per-sample
 * absolute error (what runtime control actually needs), plus the
 * under-prediction exposure that drives PM's guardband.
 */

#include <algorithm>

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();
    const PowerEstimator est = b.powerEstimator();

    std::printf("Power-model validation per workload (2 GHz, trained "
                "model, 10 ms samples)\n\n");

    struct Row
    {
        std::string name;
        PowerValidation v;
    };
    std::vector<Row> rows;
    for (const auto &w : b.suite) {
        const RunResult r =
            b.platform.runAtPState(w, b.config.pstates.maxIndex());
        rows.push_back({w.name(), validatePowerModel(r.trace, est)});
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &c) {
        return a.v.meanAbsErrorW < c.v.meanAbsErrorW;
    });

    TextTable t;
    t.header({"benchmark", "bias (W)", "per-sample MAE (W)",
              "worst (W)", "under-pred > guard (%)"});
    for (const auto &r : rows) {
        t.row({r.name, TextTable::num(r.v.meanErrorW, 2),
               TextTable::num(r.v.meanAbsErrorW, 2),
               TextTable::num(r.v.worstErrorW, 2),
               TextTable::num(r.v.underPredictedFrac * 100.0, 1)});
    }
    std::printf("%s\n", t.str().c_str());

    std::printf("galgel sits at the bottom: large negative bias and "
                "under-prediction — exactly the failure the paper "
                "reports for PM, and what the 0.5 W guardband plus "
                "PM-F/PM-A feedback absorb. Most of the suite "
                "validates to a few hundred mW per sample even though "
                "none of these workloads were in the training set.\n");
    return 0;
}
