/**
 * @file
 * Design ablation: PM's asymmetric control. The paper lowers frequency
 * on a single offending 10 ms sample but raises only after 100 ms of
 * consecutive agreeing samples. This harness sweeps the raise window
 * (1 = symmetric control) and reports the violation/performance
 * trade-off on the bursty and phase-alternating workloads.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    const double limit = 13.5;
    std::printf("Ablation — PM raise window (samples) at %.1f W\n\n",
                limit);

    for (const char *name : {"galgel", "ammp", "gcc"}) {
        const Workload &w = b.workload(name);
        const RunResult free =
            b.platform.runAtPState(w, b.config.pstates.maxIndex());
        TextTable t;
        t.header({"raise window", "over-limit (%)", "slowdown (%)",
                  "transitions"});
        for (size_t window : {size_t(1), size_t(3), size_t(10),
                              size_t(30)}) {
            PerformanceMaximizer pm(
                b.powerEstimator(),
                PmConfig{.powerLimitW = limit, .guardbandW = 0.5,
                         .raiseWindow = window});
            const RunResult r = b.platform.run(w, pm);
            t.row({TextTable::num(static_cast<int64_t>(window)),
                   TextTable::num(
                       r.trace.fractionOverLimit(limit, 10) * 100.0, 2),
                   TextTable::num(
                       (r.seconds / free.seconds - 1.0) * 100.0, 1),
                   TextTable::num(static_cast<int64_t>(
                       r.dvfs.transitions))});
        }
        std::printf("%s:\n%s\n", name, t.str().c_str());
    }
    std::printf("expected: window 1 (symmetric) raises eagerly — more "
                "transitions and more limit violations on bursty "
                "workloads; long windows trade a little performance "
                "for cleaner adherence.\n");
    return 0;
}
