/**
 * @file
 * Workload counter characterization at 2 GHz — the analysis behind the
 * paper's Fig 7 discussion, which explains each benchmark's PM/PS
 * behavior through its counter rates: DCU-miss-outstanding cycles,
 * resource stalls, memory (bus) requests, L2 requests, and decode
 * rate. Sorted like Fig 7 (by frequency sensitivity).
 */

#include <algorithm>

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();
    CoreModel core(b.config.core);

    std::printf("Workload characterization at 2000 MHz (per-cycle "
                "counter rates)\n\n");

    struct Row
    {
        std::string name;
        double speed_gain;   // 1600 -> 2000 MHz perf gain
        double ipc, dpc, dcu, rs, mem, l2;
    };
    std::vector<Row> rows;
    for (const auto &w : b.suite) {
        Row r;
        r.name = w.name();
        auto avg = [&](auto fn) { return w.weightedAverage(fn); };
        // Time-weighted per-cycle rates via per-phase events.
        double cycles = 0.0;
        EventTotals totals;
        for (const auto &p : w.phases()) {
            const EventTotals e = core.eventsFor(
                p, 2.0, static_cast<double>(p.instructions));
            totals += e;
            cycles += e.cycles;
        }
        r.ipc = totals.instructionsRetired / cycles;
        r.dpc = totals.instructionsDecoded / cycles;
        r.dcu = totals.dcuMissOutstanding / cycles;
        r.rs = totals.resourceStalls / cycles;
        r.mem = totals.busMemoryRequests / cycles;
        r.l2 = totals.l2Requests / cycles;
        (void)avg;
        // Frequency sensitivity, Fig 7's x-axis.
        double t16 = 0.0, t20 = 0.0;
        for (const auto &p : w.phases()) {
            const double n = static_cast<double>(p.instructions);
            t16 += n / core.instrPerSec(p, 1.6);
            t20 += n / core.instrPerSec(p, 2.0);
        }
        r.speed_gain = t16 / t20 - 1.0;
        rows.push_back(r);
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &c) {
        return a.speed_gain < c.speed_gain;
    });

    TextTable t;
    t.header({"benchmark", "1600->2000 gain (%)", "IPC", "DPC",
              "DCU/cyc", "RS/cyc", "MemReq/kcyc", "L2Req/kcyc"});
    for (const auto &r : rows) {
        t.row({r.name, TextTable::num(r.speed_gain * 100.0, 1),
               TextTable::num(r.ipc, 3), TextTable::num(r.dpc, 3),
               TextTable::num(r.dcu, 3), TextTable::num(r.rs, 3),
               TextTable::num(r.mem * 1000.0, 2),
               TextTable::num(r.l2 * 1000.0, 2)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("paper's reading of this table: the top rows (swim, "
                "lucas, equake, mcf, applu, art) combine high DCU "
                "occupancy, resource stalls and memory requests — DRAM-"
                "bound, insensitive to frequency; the bottom rows "
                "(perlbmk, mesa, eon, crafty, sixtrack) have low stall "
                "rates and scale with the core clock; crafty and "
                "perlbmk pay for their high decode and L2-request "
                "rates in Watts, so PM must throttle them first.\n");
    return 0;
}
