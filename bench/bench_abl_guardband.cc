/**
 * @file
 * Design ablation: PM's guardband. The paper adds 0.5 W to every
 * estimate to absorb model error and system variability. This harness
 * sweeps the guardband and reports violations vs performance on a
 * suite subset spanning the power spectrum.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    const double limit = 13.5;
    std::printf("Ablation — PM guardband at %.1f W\n\n", limit);

    const std::vector<std::string> names = {"crafty", "galgel", "gzip",
                                            "ammp", "swim"};

    TextTable t;
    t.header({"guardband (W)", "worst over-limit (%)",
              "suite slowdown (%)"});
    double t_free = 0.0;
    for (const auto &name : names)
        t_free += b.platform
                      .runAtPState(b.workload(name),
                                   b.config.pstates.maxIndex())
                      .seconds;
    for (double guard : {0.0, 0.25, 0.5, 1.0, 2.0}) {
        double worst_over = 0.0;
        double total = 0.0;
        for (const auto &name : names) {
            PerformanceMaximizer pm(
                b.powerEstimator(),
                PmConfig{.powerLimitW = limit, .guardbandW = guard});
            const RunResult r = b.platform.run(b.workload(name), pm);
            worst_over = std::max(
                worst_over, r.trace.fractionOverLimit(limit, 10));
            total += r.seconds;
        }
        t.row({TextTable::num(guard, 2),
               TextTable::num(worst_over * 100.0, 2),
               TextTable::num((total / t_free - 1.0) * 100.0, 1)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("expected: violations shrink monotonically with the "
                "guardband while the performance cost grows; the "
                "paper's 0.5 W sits at the knee.\n");
    return 0;
}
