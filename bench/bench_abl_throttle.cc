/**
 * @file
 * Actuation-mechanism ablation: DVFS vs clock throttling (the paper's
 * companion report studies both). Same PS governor, same floors, same
 * workloads — one system exposes the Pentium M DVFS menu, the other
 * only duty-cycle modulation of the 2 GHz point (frequency falls,
 * voltage does not). Throttling saves far less energy per unit of
 * performance given up, because it forfeits the V² term.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Ablation — actuation mechanism under PS: DVFS vs "
                "clock throttling\n\n");

    // Throttle-only platform: 8 duty levels of the 2 GHz point.
    PlatformConfig throttle_config = b.config;
    throttle_config.pstates =
        throttleTable(b.config.pstates[b.config.pstates.maxIndex()], 8);
    throttle_config.initialPState =
        throttle_config.pstates.maxIndex();
    Platform throttle_platform(throttle_config);

    // Train models for the throttle menu too — the methodology is
    // actuation-agnostic.
    TrainingSetup setup;
    setup.pstates = throttle_config.pstates;
    setup.core = throttle_config.core;
    setup.power = throttle_config.power;
    setup.sensor = throttle_config.sensor;
    const auto points =
        collectTrainingPoints(b.models.trainingPhases, setup);
    const PowerTrainingResult throttle_power =
        trainPowerModel(points, setup.pstates);
    const PerfTrainingResult throttle_perf =
        trainPerfModel(b.models.trainingPhases, setup);

    TextTable t;
    t.header({"workload", "floor", "DVFS save (%)", "DVFS loss (%)",
              "throttle save (%)", "throttle loss (%)"});
    for (const char *name : {"swim", "gzip", "ammp"}) {
        const Workload &w = b.workload(name);
        const RunResult base_d =
            b.platform.runAtPState(w, b.config.pstates.maxIndex());
        const RunResult base_t = throttle_platform.runAtPState(
            w, throttle_config.pstates.maxIndex());
        for (double floor : {0.8, 0.6}) {
            auto ps_d = b.makePs(floor);
            const RunResult rd = b.platform.run(w, *ps_d);
            PowerSave ps_t(throttle_config.pstates,
                           throttle_perf.makeEstimator(),
                           PsConfig{floor});
            const RunResult rt = throttle_platform.run(w, ps_t);
            t.row({name, TextTable::num(floor * 100.0, 0),
                   TextTable::num(
                       (1.0 - rd.trueEnergyJ / base_d.trueEnergyJ) *
                           100.0, 1),
                   TextTable::num(
                       (1.0 - base_d.seconds / rd.seconds) * 100.0, 1),
                   TextTable::num(
                       (1.0 - rt.trueEnergyJ / base_t.trueEnergyJ) *
                           100.0, 1),
                   TextTable::num(
                       (1.0 - base_t.seconds / rt.seconds) * 100.0,
                       1)});
        }
    }
    std::printf("%s\n", t.str().c_str());

    std::printf("fitted power model at the lowest actuation point:\n");
    std::printf("  DVFS    600 MHz/0.998 V: alpha %.2f  beta %.2f\n",
                b.models.power.coeffs[0].alpha,
                b.models.power.coeffs[0].beta);
    std::printf("  throttle 250 MHz/1.340 V: alpha %.2f  beta %.2f\n",
                throttle_power.coeffs[0].alpha,
                throttle_power.coeffs[0].beta);
    std::printf("\nexpected: at equal performance loss, DVFS saves a "
                "multiple of what throttling saves — throttling keeps "
                "full voltage, so leakage and the V^2 term remain.\n");
    return 0;
}
