/**
 * @file
 * Table IV reproduction: the static frequency a worst-case-provisioned
 * system must choose for each power limit, from the Table III
 * worst-case power curve.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    const auto worst = worstCasePowerTable(b.platform);
    // Paper Table IV for reference.
    const std::vector<std::pair<double, int>> paper = {
        {17.5, 1800}, {16.5, 1800}, {15.5, 1800}, {14.5, 1600},
        {13.5, 1600}, {12.5, 1600}, {11.5, 1400}, {10.5, 1400},
    };

    std::printf("Table IV — power-limit-determined static "
                "frequencies\n\n");
    TextTable t;
    t.header({"power limit (W)", "static freq (MHz)", "paper (MHz)"});
    for (const auto &[limit, paper_mhz] : paper) {
        const size_t idx = StaticClock::chooseForLimit(worst, limit);
        t.row({TextTable::num(limit, 1),
               TextTable::num(b.config.pstates[idx].freqMhz, 0),
               TextTable::num(static_cast<int64_t>(paper_mhz))});
    }
    std::printf("%s\n", t.str().c_str());
    return 0;
}
