/**
 * @file
 * Section IV-B.2 ablation: the performance-model exponent. The paper
 * found 0.81 and 0.59 were both local minima of the training error;
 * re-running with 0.59 brought mcf back inside the 80% floor and
 * improved art. This harness compares the trained exponent, the
 * paper's 0.81, and the alternative 0.59 on the violators and on the
 * suite.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Ablation — PS exponent: trained (%.2f) vs paper 0.81 "
                "vs alternate 0.59, 80%% floor\n\n",
                b.models.perf.exponent);

    const SuiteResult full = runSuiteAtPState(
        b.platform, b.suite, b.config.pstates.maxIndex());

    const std::vector<std::pair<std::string, double>> variants = {
        {"trained", b.models.perf.exponent},
        {"paper-0.81", PerfEstimator::PaperExponent},
        {"alt-0.59", PerfEstimator::AlternateExponent},
    };

    TextTable t;
    t.header({"exponent", "art loss (%)", "mcf loss (%)",
              "suite loss (%)", "suite savings (%)"});
    for (const auto &[label, exponent] : variants) {
        const PerfEstimator est(b.models.perf.threshold, exponent);
        const SuiteResult r =
            runSuite(b.platform, b.suite, [&] {
                return std::make_unique<PowerSave>(
                    b.config.pstates, est, PsConfig{0.8});
            });
        auto loss = [&](const std::string &name) {
            return (1.0 - full.byName(name).seconds /
                              r.byName(name).seconds) * 100.0;
        };
        t.row({label, TextTable::num(loss("art"), 1),
               TextTable::num(loss("mcf"), 1),
               TextTable::num(
                   (1.0 - full.totalSeconds() / r.totalSeconds()) *
                       100.0, 1),
               TextTable::num((1.0 - r.totalMeasuredEnergyJ() /
                                         full.totalMeasuredEnergyJ()) *
                                  100.0, 1)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("allowed loss at the 80%% floor: 20%%. paper: with "
                "0.81, art 42.2%% / mcf 27.7%%; with 0.59, mcf 17.9%% "
                "(within) and art 26.3%% (closer). The lower exponent "
                "trades some energy savings for floor adherence.\n");
    return 0;
}
