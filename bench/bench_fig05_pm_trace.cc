/**
 * @file
 * Figure 5 reproduction: PerformanceMaximizer controlling ammp —
 * unconstrained 2 GHz operation vs PM under 14.5 W and 10.5 W limits.
 * Prints a downsampled power/frequency trace for each case plus run
 * summaries; the frequency should visibly modulate with ammp's
 * memory/compute phase alternation.
 */

#include "bench_util.hh"

namespace
{

void
printTrace(const char *label, const aapm::RunResult &r, double limit_w)
{
    using namespace aapm_bench;
    std::printf("--- %s: %.2f s, avg %.2f W, energy %.1f J", label,
                r.seconds, r.avgTruePowerW, r.trueEnergyJ);
    if (limit_w > 0.0) {
        std::printf(", over-limit (100 ms win): %.1f%%",
                    r.trace.fractionOverLimit(limit_w, 10) * 100.0);
    }
    std::printf(" ---\n");
    std::printf("%8s  %9s  %9s\n", "t (s)", "power (W)", "freq (MHz)");
    const auto &samples = r.trace.samples();
    const size_t step = std::max<size_t>(1, samples.size() / 40);
    for (size_t i = 0; i < samples.size(); i += step) {
        std::printf("%8.2f  %9.2f  %9.0f\n",
                    ticksToSeconds(samples[i].when),
                    samples[i].measuredW, samples[i].freqMhz);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Fig 5 — PM on ammp: unconstrained vs 14.5 W vs "
                "10.5 W\n\n");

    const Workload &ammp = b.workload("ammp");

    auto csv = maybeCsv("fig05_pm_trace");
    if (csv) {
        csv->row({"series", "t_s", "measured_w", "true_w", "freq_mhz",
                  "ipc", "dpc", "temp_c"});
    }

    const RunResult unconstrained =
        b.platform.runAtPState(ammp, b.config.pstates.maxIndex());
    printTrace("unconstrained 2000 MHz", unconstrained, 0.0);
    if (csv)
        traceToCsv(*csv, "unconstrained", unconstrained.trace);

    for (double limit : {14.5, 10.5}) {
        auto pm = b.makePm(limit);
        const RunResult r = b.platform.run(ammp, *pm);
        char label[64];
        std::snprintf(label, sizeof(label), "PM limit %.1f W", limit);
        printTrace(label, r, limit);
        if (csv)
            traceToCsv(*csv, label, r.trace);
    }

    std::printf("expected: frequency modulates with ammp's phase "
                "alternation; tighter limits push residency to lower "
                "p-states.\n");
    return 0;
}
