/**
 * @file
 * Table II reproduction: train the per-p-state DPC power model on the
 * MS-Loops training set and print the fitted (α, β) next to the
 * paper's published coefficients.
 */

#include <cstdio>

#include "aapm.hh"

int
main()
{
    using namespace aapm;
    setLogLevel(LogLevel::Quiet);

    PlatformConfig config;
    const TrainedModels models = trainModels(config);
    const PowerEstimator paper = PowerEstimator::paperPentiumM();

    std::printf("Table II — DPC-based power model per p-state\n");
    std::printf("(fitted on this platform vs. published Pentium M"
                " coefficients)\n\n");

    TextTable t;
    t.header({"freq (MHz)", "voltage (V)", "alpha", "beta",
              "paper alpha", "paper beta", "fit MAE (W)"});
    for (size_t i = 0; i < config.pstates.size(); ++i) {
        const PState &ps = config.pstates[i];
        t.row({TextTable::num(ps.freqMhz, 0),
               TextTable::num(ps.voltage, 3),
               TextTable::num(models.power.coeffs[i].alpha, 2),
               TextTable::num(models.power.coeffs[i].beta, 2),
               TextTable::num(paper.coeffs(i).alpha, 2),
               TextTable::num(paper.coeffs(i).beta, 2),
               TextTable::num(models.power.meanAbsErrorW[i], 3)});
    }
    std::printf("%s\n", t.str().c_str());

    std::printf("Training points at 2000 MHz (DPC vs measured W):\n");
    TextTable pts;
    pts.header({"loop", "DPC", "IPC", "DCU/IPC", "power (W)"});
    const size_t top = config.pstates.size() - 1;
    for (const auto &pt : models.power.points) {
        if (pt.pstate != top)
            continue;
        pts.row({pt.name, TextTable::num(pt.dpc, 3),
                 TextTable::num(pt.ipc, 3),
                 TextTable::num(pt.ipc > 0 ? pt.dcuPerCycle / pt.ipc
                                           : 0.0, 2),
                 TextTable::num(pt.powerW, 2)});
    }
    std::printf("%s\n", pts.str().c_str());

    std::printf("Performance model training: threshold=%.2f "
                "exponent=%.2f (paper: %.2f / %.2f), loss=%.4f\n",
                models.perf.threshold, models.perf.exponent,
                PerfEstimator::PaperThreshold,
                PerfEstimator::PaperExponent, models.perf.loss);
    if (!models.perf.exponentMinima.empty()) {
        std::printf("exponent local minima:");
        for (const auto &[e, l] : models.perf.exponentMinima)
            std::printf(" %.2f(loss %.4f)", e, l);
        std::printf("\n");
    }
    return 0;
}
