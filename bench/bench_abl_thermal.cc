/**
 * @file
 * Extension: predictive thermal management (the paper's introduction
 * names thermal envelopes alongside power; Foxton-style closed-loop
 * control is its hardware counterpart). ThermalCap uses the same
 * counter-based power model plus the package thermal resistance to
 * keep die temperature under a cap — compared against uncontrolled
 * operation and a purely reactive (diode-trip) policy.
 */

#include "bench_util.hh"

namespace
{

/** Reactive comparison policy: step down on trip, creep up when cool. */
class ReactiveTrip : public aapm::Governor
{
  public:
    ReactiveTrip(double max_c, size_t nstates)
        : maxC_(max_c), n_(nstates)
    {
    }

    const char *name() const override { return "trip"; }
    void configureCounters(aapm::Pmu &pmu) override { (void)pmu; }

    size_t
    decide(const aapm::MonitorSample &sample, size_t current) override
    {
        if (aapm::MonitorSample::available(sample.tempC)) {
            if (sample.tempC >= maxC_ && current > 0)
                return current - 1;
            if (sample.tempC < maxC_ - 4.0 && current + 1 < n_)
                return current + 1;
        }
        return current;
    }

  private:
    double maxC_;
    size_t n_;
};

} // namespace

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    const double cap_c = 70.0;
    std::printf("Extension — thermal cap at %.0f C on crafty "
                "(hottest workload), cooling-constrained package\n\n",
                cap_c);

    // A thermally-constrained system: a weak heatsink (2 C/W) pushes
    // crafty's uncontrolled steady state past the cap.
    PlatformConfig config = b.config;
    config.thermal.rTh = 2.0;
    Platform platform(config);

    // The package time constant is R*C = 16 s; run long enough for
    // the trajectories to settle.
    const Workload crafty = specWorkload("crafty", config.core, 90.0);

    const RunResult free =
        platform.runAtPState(crafty, config.pstates.maxIndex());

    ThermalCapConfig tc_cfg;
    tc_cfg.maxTempC = cap_c;
    tc_cfg.rThermal = config.thermal.rTh;
    tc_cfg.ambientC = config.thermal.ambientC;
    ThermalCap predictive(b.powerEstimator(), tc_cfg);
    const RunResult rp = platform.run(crafty, predictive);

    ReactiveTrip trip(cap_c, config.pstates.size());
    const RunResult rt = platform.run(crafty, trip);

    auto report = [&](const char *label, const RunResult &r) {
        double peak = 0.0;
        double over_s = 0.0;
        for (const auto &s : r.trace.samples()) {
            peak = std::max(peak, s.tempC);
            if (s.tempC > cap_c)
                over_s += 0.01;
        }
        std::printf("%-12s  %6.2f s  peak %5.1f C  time over cap "
                    "%5.2f s  (%4.1f%% slower than free)\n",
                    label, r.seconds, peak, over_s,
                    (r.seconds / free.seconds - 1.0) * 100.0);
    };
    report("uncapped", free);
    report("predictive", rp);
    report("reactive", rt);

    std::printf("\ntemperature trajectory under the predictive cap "
                "(5 s resolution):\n");
    int next_report = 5;
    for (const auto &s : rp.trace.samples()) {
        if (ticksToSeconds(s.when) >= next_report) {
            std::printf("  t=%3d s  T=%5.1f C  f=%4.0f MHz\n",
                        next_report, s.tempC, s.freqMhz);
            next_report += 5;
        }
    }
    std::printf("\nexpected: uncapped crafty settles well above the "
                "cap; the predictive policy converges below it with "
                "little or no overshoot, the reactive one oscillates "
                "around the trip point.\n");
    return 0;
}
