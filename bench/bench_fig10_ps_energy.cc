/**
 * @file
 * Figure 10 reproduction: per-workload energy savings under each
 * PowerSave floor, sorted by the maximum benefit available from DVFS
 * (savings at the 600 MHz p-state), with the ALLBENCH aggregate.
 * Memory-bound workloads reach most of their maximum savings already
 * at high floors; core-bound workloads save little at any floor.
 */

#include <algorithm>
#include <map>

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Fig 10 — per-workload energy savings vs PS floor\n\n");

    SweepGrid grid;
    const size_t h_full =
        grid.addSuiteAtPState(b.suite, b.config.pstates.maxIndex());
    const size_t h_slow = grid.addSuiteAtPState(b.suite, 0);
    std::vector<size_t> h_ps;
    for (double floor : paperFloors()) {
        h_ps.push_back(
            grid.addSuite(b.suite, [&b, floor] { return b.makePs(floor); }));
    }
    const SweepResults res = b.sweep.run(grid);
    const SuiteResult full = res.suite(h_full);
    const SuiteResult slow = res.suite(h_slow);

    std::map<std::string, std::map<int, double>> savings;
    std::map<int, double> all;
    const double e_full = full.totalMeasuredEnergyJ();
    for (size_t i = 0; i < paperFloors().size(); ++i) {
        const double floor = paperFloors()[i];
        const SuiteResult r = res.suite(h_ps[i]);
        const int key = static_cast<int>(floor * 100.0);
        for (const auto &run : r.runs) {
            savings[run.workloadName][key] =
                1.0 - run.measuredEnergyJ /
                          full.byName(run.workloadName).measuredEnergyJ;
        }
        all[key] = 1.0 - r.totalMeasuredEnergyJ() / e_full;
    }

    struct Row
    {
        std::string name;
        double max_saving;   // at 600 MHz
    };
    std::vector<Row> rows;
    for (const auto &w : b.suite) {
        rows.push_back({w.name(),
                        1.0 - slow.byName(w.name()).measuredEnergyJ /
                              full.byName(w.name()).measuredEnergyJ});
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &c) {
        return a.max_saving > c.max_saving;
    });

    auto csv = maybeCsv("fig10_ps_energy");
    if (csv) {
        csv->row({"benchmark", "save_80", "save_60", "save_40",
                  "save_20", "bound_600"});
        for (const auto &r : rows) {
            csv->row({r.name, std::to_string(savings[r.name][80]),
                      std::to_string(savings[r.name][60]),
                      std::to_string(savings[r.name][40]),
                      std::to_string(savings[r.name][20]),
                      std::to_string(r.max_saving)});
        }
    }
    TextTable t;
    t.header({"benchmark", "80% (%)", "60% (%)", "40% (%)", "20% (%)",
              "600MHz bound (%)"});
    for (const auto &r : rows) {
        t.row({r.name, TextTable::num(savings[r.name][80] * 100.0, 1),
               TextTable::num(savings[r.name][60] * 100.0, 1),
               TextTable::num(savings[r.name][40] * 100.0, 1),
               TextTable::num(savings[r.name][20] * 100.0, 1),
               TextTable::num(r.max_saving * 100.0, 1)});
    }
    // ALLBENCH aggregate (suite totals).
    t.row({"ALLBENCH", TextTable::num(all[80] * 100.0, 1),
           TextTable::num(all[60] * 100.0, 1),
           TextTable::num(all[40] * 100.0, 1),
           TextTable::num(all[20] * 100.0, 1),
           TextTable::num(
               (1.0 - slow.totalMeasuredEnergyJ() / e_full) * 100.0,
               1)});
    std::printf("%s\n", t.str().c_str());
    std::printf("expected: memory-bound codes (swim/equake/mcf/lucas/"
                "applu) on the left with the largest savings; "
                "core-bound (eon/sixtrack/crafty/twolf/mesa) on the "
                "right with the least.\n");
    return 0;
}
