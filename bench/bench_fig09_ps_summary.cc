/**
 * @file
 * Figure 9 reproduction: suite-level performance reduction and energy
 * savings for each PowerSave floor (80/60/40/20%), plus the 600 MHz
 * bound on both. The paper's headline: 19.2% energy savings for a 10%
 * performance reduction at the 80% floor, and every floor met at suite
 * level (e.g. 30.8% reduction at the 60% floor).
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Fig 9 — suite performance reduction & energy savings "
                "vs PS floor\n\n");

    // Both bounds and every floor in one concurrent grid.
    SweepGrid grid;
    const size_t h_full =
        grid.addSuiteAtPState(b.suite, b.config.pstates.maxIndex());
    const size_t h_slow = grid.addSuiteAtPState(b.suite, 0);
    std::vector<size_t> h_ps;
    for (double floor : paperFloors()) {
        h_ps.push_back(
            grid.addSuite(b.suite, [&b, floor] { return b.makePs(floor); }));
    }
    const SweepResults res = b.sweep.run(grid);

    const SuiteResult full = res.suite(h_full);
    const double t_full = full.totalSeconds();
    const double e_full = full.totalMeasuredEnergyJ();

    auto csv = maybeCsv("fig09_ps_summary");
    if (csv)
        csv->row({"floor", "perf_reduction", "energy_savings"});
    TextTable t;
    t.header({"floor", "allowed loss (%)", "perf reduction (%)",
              "energy savings (%)"});
    for (size_t i = 0; i < paperFloors().size(); ++i) {
        const double floor = paperFloors()[i];
        const SuiteResult r = res.suite(h_ps[i]);
        const double reduction = 1.0 - t_full / r.totalSeconds();
        const double savings =
            1.0 - r.totalMeasuredEnergyJ() / e_full;
        t.row({TextTable::num(floor * 100.0, 0),
               TextTable::num((1.0 - floor) * 100.0, 0),
               TextTable::num(reduction * 100.0, 1),
               TextTable::num(savings * 100.0, 1)});
        if (csv)
            csv->rowNums({floor, reduction, savings});
    }

    // Bounds: everything pinned at the slowest p-state.
    const SuiteResult slow = res.suite(h_slow);
    t.row({"600MHz", "-",
           TextTable::num((1.0 - t_full / slow.totalSeconds()) * 100.0,
                          1),
           TextTable::num(
               (1.0 - slow.totalMeasuredEnergyJ() / e_full) * 100.0,
               1)});
    std::printf("%s\n", t.str().c_str());
    std::printf("paper: 80%% floor -> ~10%% reduction and 19.2%% "
                "savings; 60%% floor -> 30.8%% reduction (within the "
                "allowed 40%%).\n");
    return 0;
}
