/**
 * @file
 * Design ablation: the monitoring/control interval. The paper fixes it
 * at 10 ms; this harness sweeps 5–100 ms and measures what the choice
 * buys — responsiveness to galgel's bursts (PM limit adherence) and to
 * ammp's phase alternation (PS floor tracking) — against the DVFS
 * transition overhead that faster control incurs.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Ablation — monitoring/control interval\n\n");

    TextTable t;
    t.header({"interval (ms)", "galgel over 13.5 W (%)",
              "galgel transitions", "ammp PS-80 perf (%)",
              "ammp PS-80 savings (%)"});
    for (Tick ms : {Tick(5), Tick(10), Tick(20), Tick(50), Tick(100)}) {
        PlatformConfig config = b.config;
        config.sampleInterval = ms * TicksPerMs;
        Platform platform(config);

        // PM on galgel: window length rescaled to keep the same 100 ms
        // raise horizon the paper uses.
        const Workload galgel =
            specWorkload("galgel", config.core, targetSeconds());
        PmConfig pm_cfg;
        pm_cfg.powerLimitW = 13.5;
        pm_cfg.raiseWindow = std::max<size_t>(
            1, static_cast<size_t>(100 / ms));
        PerformanceMaximizer pm(b.powerEstimator(), pm_cfg);
        const RunResult rg = platform.run(galgel, pm);
        const size_t win = std::max<size_t>(1, 100 / ms);

        // PS on ammp.
        const Workload ammp =
            specWorkload("ammp", config.core, targetSeconds());
        const RunResult base = platform.runAtPState(
            ammp, config.pstates.maxIndex());
        auto ps = b.makePs(0.8);
        const RunResult ra = platform.run(ammp, *ps);

        t.row({TextTable::num(static_cast<int64_t>(ms)),
               TextTable::num(
                   rg.trace.fractionOverLimit(13.5, win) * 100.0, 1),
               TextTable::num(
                   static_cast<int64_t>(rg.dvfs.transitions)),
               TextTable::num(base.seconds / ra.seconds * 100.0, 1),
               TextTable::num((1.0 - ra.trueEnergyJ /
                                         base.trueEnergyJ) * 100.0,
                              1)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("expected: slower control reacts late to galgel's "
                "bursts and tracks ammp's phases loosely (less saving "
                "or floor slippage); much faster control buys little "
                "beyond 10 ms because the paper's asymmetric window "
                "already filters single-sample noise.\n");
    return 0;
}
