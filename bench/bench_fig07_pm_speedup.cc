/**
 * @file
 * Figure 7 reproduction: per-benchmark speedup of PM over static
 * clocking at a 17.5 W limit (static frequency: 1800 MHz), and the
 * unconstrained 2000 MHz speedup over the same baseline. Benchmarks
 * are sorted by the unconstrained speedup (the paper's x-axis order).
 * The headline: PM recovers ~86% of the possible suite speedup.
 */

#include <algorithm>

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    const double limit = 17.5;
    std::printf("Fig 7 — PM speedup and unconstrained speedup over "
                "static 1800 MHz (limit %.1f W)\n\n", limit);

    const auto worst = worstCasePowerTable(b.platform);
    const size_t sidx = StaticClock::chooseForLimit(worst, limit);

    // One grid: static baseline, unconstrained bound and the PM sweep
    // run concurrently across every (configuration × workload) pair.
    SweepGrid grid;
    const size_t h_fixed = grid.addSuiteAtPState(b.suite, sidx);
    const size_t h_free =
        grid.addSuiteAtPState(b.suite, b.config.pstates.maxIndex());
    const size_t h_pm =
        grid.addSuite(b.suite, [&b, limit] { return b.makePm(limit); });
    const SweepResults res = b.sweep.run(grid);
    const SuiteResult fixed = res.suite(h_fixed);
    const SuiteResult free = res.suite(h_free);
    const SuiteResult pm = res.suite(h_pm);

    struct Row
    {
        std::string name;
        double pm_speedup;
        double max_speedup;
    };
    std::vector<Row> rows;
    for (const auto &w : b.suite) {
        const double t_static = fixed.byName(w.name()).seconds;
        rows.push_back({w.name(),
                        t_static / pm.byName(w.name()).seconds - 1.0,
                        t_static / free.byName(w.name()).seconds - 1.0});
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &c) {
        return a.max_speedup < c.max_speedup;
    });

    TextTable t;
    t.header({"benchmark", "PM speedup (%)", "2000 MHz speedup (%)"});
    auto csv = maybeCsv("fig07_pm_speedup");
    if (csv)
        csv->row({"benchmark", "pm_speedup", "max_speedup"});
    for (const auto &r : rows) {
        t.row({r.name, TextTable::num(r.pm_speedup * 100.0, 1),
               TextTable::num(r.max_speedup * 100.0, 1)});
        if (csv) {
            csv->row({r.name, std::to_string(r.pm_speedup),
                      std::to_string(r.max_speedup)});
        }
    }
    std::printf("%s\n", t.str().c_str());

    const double pm_total =
        fixed.totalSeconds() / pm.totalSeconds() - 1.0;
    const double max_total =
        fixed.totalSeconds() / free.totalSeconds() - 1.0;
    std::printf("suite speedup: PM %.1f%%, unconstrained %.1f%% -> PM "
                "recovers %.0f%% of the possible speedup "
                "(paper: 86%%)\n",
                pm_total * 100.0, max_total * 100.0,
                pm_total / max_total * 100.0);
    std::printf("expected ordering: swim-like memory-bound codes gain "
                "~0 at either end; sixtrack gains the full ~11%%; "
                "high-power crafty/perlbmk/galgel/bzip2 are throttled "
                "by PM and trail the unconstrained bar.\n");
    return 0;
}
