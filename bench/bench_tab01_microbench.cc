/**
 * @file
 * Table I reproduction: the MS-Loops microbenchmarks, with the
 * characterization the cache-hierarchy simulation produced for each
 * loop × footprint (the paper's 12-point training set).
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Table I — MS-Loops microbenchmarks\n\n");
    std::printf("DAXPY       scale-and-add over two FP arrays "
                "(Linpack daxpy)\n");
    std::printf("FMA         adjacent-pair dot product; most exercises "
                "the HW prefetcher\n");
    std::printf("MCOPY       array copy; tests bandwidth limits\n");
    std::printf("MLOAD_RAND  dependent random loads; tests latency\n\n");

    std::printf("Characterization against the modeled hierarchy "
                "(32KB L1 / 2MB L2 / DRAM):\n\n");
    TextTable t;
    t.header({"loop", "L1 miss/instr", "DRAM line/instr", "pf cover",
              "IPC@2GHz", "DCU/IPC@2GHz"});
    CoreModel core(b.config.core);
    for (const auto &[name, phase] : b.models.trainingPhases) {
        const double ipc = core.ipc(phase, 2.0);
        t.row({name, TextTable::num(phase.l1MissPerInstr, 4),
               TextTable::num(phase.l2MissPerInstr, 4),
               TextTable::num(phase.prefetchCoverage, 2),
               TextTable::num(ipc, 3),
               TextTable::num(core.dcuOutstandingPerInstr(phase, 2.0),
                              2)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("12 points = 4 loops x 3 footprints "
                "(L1-, L2- and DRAM-resident), as in the paper.\n");
    return 0;
}
