/**
 * @file
 * Counter-budget ablation. The paper argues its methodology is
 * feasible because each solution fits the Pentium M's two programmable
 * counters. What if the budget were just one? This harness runs a PS
 * variant that time-multiplexes IPC and DCU through a single slot
 * (each reading stale by one interval) against the dedicated
 * two-counter PS, on the phase-changing workloads where staleness
 * costs the most.
 */

#include "bench_util.hh"

namespace
{

using namespace aapm;

/** PowerSave living on a single rotated counter. */
class OneCounterPowerSave : public Governor
{
  public:
    OneCounterPowerSave(PStateTable table, PerfEstimator estimator,
                        double floor)
        : table_(std::move(table)), inner_(table_, estimator, {floor}),
          rotation_(0, {PmuEvent::InstructionsRetired,
                        PmuEvent::DcuMissOutstanding})
    {
    }

    const char *name() const override { return "PS-1ctr"; }

    void
    configureCounters(Pmu &pmu) override
    {
        pmu_ = &pmu;
        rotation_.start(pmu);
    }

    size_t
    decide(const MonitorSample &sample, size_t current) override
    {
        rotation_.tick(*pmu_, sample.cycles);
        const double ipc =
            rotation_.rate(PmuEvent::InstructionsRetired);
        const double dcu =
            rotation_.rate(PmuEvent::DcuMissOutstanding);
        if (std::isnan(ipc) || std::isnan(dcu))
            return current;   // not enough history yet
        MonitorSample patched = sample;
        patched.ipc = ipc;
        patched.dcuPerCycle = dcu;
        return inner_.decide(patched, current);
    }

  private:
    PStateTable table_;
    PowerSave inner_;
    RotatingCounter rotation_;
    Pmu *pmu_ = nullptr;
};

} // namespace

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Ablation — PS with a 1-counter budget (rotated "
                "IPC/DCU) vs the paper's 2 counters, 80%% floor\n\n");

    TextTable t;
    t.header({"workload", "2-ctr perf (%)", "2-ctr save (%)",
              "1-ctr perf (%)", "1-ctr save (%)", "1-ctr transitions"});
    for (const char *name : {"ammp", "galgel", "gzip", "swim"}) {
        const Workload &w = b.workload(name);
        const RunResult base =
            b.platform.runAtPState(w, b.config.pstates.maxIndex());

        auto ps2 = b.makePs(0.8);
        const RunResult r2 = b.platform.run(w, *ps2);
        OneCounterPowerSave ps1(b.config.pstates, b.perfEstimator(),
                                0.8);
        const RunResult r1 = b.platform.run(w, ps1);

        auto perf = [&](const RunResult &r) {
            return base.seconds / r.seconds * 100.0;
        };
        auto save = [&](const RunResult &r) {
            return (1.0 - r.trueEnergyJ / base.trueEnergyJ) * 100.0;
        };
        t.row({name, TextTable::num(perf(r2), 1),
               TextTable::num(save(r2), 1), TextTable::num(perf(r1), 1),
               TextTable::num(save(r1), 1),
               TextTable::num(static_cast<int64_t>(
                   r1.dvfs.transitions))});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("result: one interval of staleness costs almost "
                "nothing at these phase lengths — multiplexing down to "
                "a single counter is viable for PS, reinforcing the "
                "paper's point that application awareness needs only a "
                "tiny counter budget (it deliberately fits in the 2 "
                "the Pentium M has, with zero staleness).\n");
    return 0;
}
