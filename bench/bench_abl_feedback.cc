/**
 * @file
 * Section IV-A.2 ablation: galgel and measured-power feedback. galgel
 * is bursty and runs hotter than the DPC model predicts, making it the
 * one workload whose PM power-limit adherence degrades (the paper
 * reports ~10% of run time over the 13.5 W limit). The paper proposes
 * incorporating measured power feedback — either scaling predictions
 * (PM-F) or adapting the model coefficients on the fly (PM-A, via
 * recursive least squares). This harness compares violation fractions
 * and performance for all three across limits.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Ablation — PM vs PM-F (measured-power feedback) on "
                "galgel\n\n");

    const Workload &galgel = b.workload("galgel");
    const RunResult free =
        b.platform.runAtPState(galgel, b.config.pstates.maxIndex());

    TextTable t;
    t.header({"limit (W)", "PM over (%)", "PM-F over (%)",
              "PM-A over (%)", "PM slow (%)", "PM-F slow (%)",
              "PM-A slow (%)"});
    for (double limit : {15.5, 14.5, 13.5, 12.5, 11.5}) {
        auto pm = b.makePm(limit);
        const RunResult rp = b.platform.run(galgel, *pm);
        PmFeedback pmf(b.powerEstimator(),
                       PmConfig{.powerLimitW = limit});
        const RunResult rf = b.platform.run(galgel, pmf);
        PmAdaptive pma(b.powerEstimator(),
                       PmConfig{.powerLimitW = limit});
        const RunResult ra = b.platform.run(galgel, pma);
        t.row({TextTable::num(limit, 1),
               TextTable::num(
                   rp.trace.fractionOverLimit(limit, 10) * 100.0, 1),
               TextTable::num(
                   rf.trace.fractionOverLimit(limit, 10) * 100.0, 1),
               TextTable::num(
                   ra.trace.fractionOverLimit(limit, 10) * 100.0, 1),
               TextTable::num((rp.seconds / free.seconds - 1.0) * 100.0,
                              1),
               TextTable::num((rf.seconds / free.seconds - 1.0) * 100.0,
                              1),
               TextTable::num((ra.seconds / free.seconds - 1.0) * 100.0,
                              1)});
    }
    std::printf("%s\n", t.str().c_str());

    // Sanity: the rest of the suite stays in bounds under plain PM.
    std::printf("suite-wide worst over-limit fraction at 13.5 W under "
                "plain PM:\n");
    double worst = 0.0;
    std::string worst_name;
    for (const auto &w : b.suite) {
        auto pm = b.makePm(13.5);
        const RunResult r = b.platform.run(w, *pm);
        const double over = r.trace.fractionOverLimit(13.5, 10);
        if (over > worst) {
            worst = over;
            worst_name = w.name();
        }
    }
    std::printf("  %s: %.1f%% (paper: galgel ~10%%, all others "
                "compliant)\n", worst_name.c_str(), worst * 100.0);
    return 0;
}
