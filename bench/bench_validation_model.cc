/**
 * @file
 * Analytical-model validation against the trace-driven timing
 * simulator: CPI for every MS-Loops point at three frequencies, from
 * both models. The analytical model drives every governor decision in
 * the library, so its agreement with the detailed reference — across
 * footprints and frequencies — is the foundation everything else
 * stands on.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();
    CoreModel core(b.config.core);

    std::printf("Model validation — analytical CPI vs trace-driven "
                "timing simulation\n\n");

    TextTable t;
    t.header({"loop", "f (MHz)", "trace CPI", "model CPI", "error (%)",
              "scale err (%)"});

    // Rebuild each spec from the training-set ordering, then fan the
    // 12 loops × 3 frequencies of miss-window walks across the pool
    // (the table frequencies include the 0.6/2.0 GHz endpoints the
    // scaling ratio needs, so nothing is simulated twice).
    const std::vector<double> freqs = {0.6, 1.2, 2.0};
    std::vector<LoopSpec> specs;
    for (const auto &[name, phase] : b.models.trainingPhases) {
        LoopSpec spec;
        for (LoopKind kind : {LoopKind::Daxpy, LoopKind::Fma,
                              LoopKind::Mcopy, LoopKind::MloadRand}) {
            for (uint64_t fp : standardFootprints()) {
                if (LoopSpec{kind, fp}.displayName() == name)
                    spec = {kind, fp};
            }
        }
        specs.push_back(spec);
    }
    std::vector<std::vector<TraceSimResult>> traces(
        specs.size(), std::vector<TraceSimResult>(freqs.size()));
    b.sweep.pool().parallelFor(
        specs.size() * freqs.size(), [&](size_t i) {
            const size_t li = i / freqs.size();
            const size_t fi = i % freqs.size();
            traces[li][fi] = simulateLoopTiming(
                specs[li], b.config.hierarchy, b.config.core,
                freqs[fi], 200'000);
        });

    RunningStats err, scale_err;
    for (size_t li = 0; li < specs.size(); ++li) {
        const auto &[name, phase] = b.models.trainingPhases[li];
        // The quantity governors depend on: how CPI scales with f.
        const auto &t06 = traces[li].front();
        const auto &t20 = traces[li].back();
        const double trace_scale = t20.cpi() / t06.cpi();
        const double model_scale =
            core.cpi(phase, 2.0) / core.cpi(phase, 0.6);
        const double s_rel = (model_scale - trace_scale) / trace_scale;
        scale_err.add(std::abs(s_rel));

        for (size_t fi = 0; fi < freqs.size(); ++fi) {
            const double mhz = freqs[fi] * 1000.0;
            const auto &trace = traces[li][fi];
            const double model_cpi = core.cpi(phase, freqs[fi]);
            const double rel =
                (model_cpi - trace.cpi()) / trace.cpi();
            err.add(std::abs(rel));
            t.row({name, TextTable::num(mhz, 0),
                   TextTable::num(trace.cpi(), 3),
                   TextTable::num(model_cpi, 3),
                   TextTable::num(rel * 100.0, 1),
                   mhz == 2000.0 ? TextTable::num(s_rel * 100.0, 1)
                                 : ""});
        }
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("absolute CPI: mean |error| %.1f%% (exact for "
                "L1-resident and latency-bound points; uniformly "
                "conservative — never optimistic — for prefetched "
                "streams, where the closed-form overlap divisor is "
                "blunter than the simulator's miss windows).\n",
                err.mean() * 100.0);
    std::printf("frequency-scaling ratio CPI(2GHz)/CPI(600MHz) — the "
                "quantity every DVFS decision rests on: mean |error| "
                "%.1f%%, worst %.1f%%.\n",
                scale_err.mean() * 100.0, scale_err.max() * 100.0);
    return 0;
}
