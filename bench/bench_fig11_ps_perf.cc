/**
 * @file
 * Figure 11 reproduction: per-workload performance reduction under
 * each PowerSave floor, sorted by the maximum reduction at the 600 MHz
 * p-state, with the ALLBENCH aggregate. Also flags floor violations —
 * the paper finds art and mcf exceed the allowed loss at the 80% (and
 * art also at the 60%) setting, traced to IPC-model error in the
 * in-between region.
 */

#include <algorithm>
#include <map>

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Fig 11 — per-workload performance reduction vs PS "
                "floor\n\n");

    SweepGrid grid;
    const size_t h_full =
        grid.addSuiteAtPState(b.suite, b.config.pstates.maxIndex());
    const size_t h_slow = grid.addSuiteAtPState(b.suite, 0);
    std::vector<size_t> h_ps;
    for (double floor : paperFloors()) {
        h_ps.push_back(
            grid.addSuite(b.suite, [&b, floor] { return b.makePs(floor); }));
    }
    const SweepResults res = b.sweep.run(grid);
    const SuiteResult full = res.suite(h_full);
    const SuiteResult slow = res.suite(h_slow);

    std::map<std::string, std::map<int, double>> reduction;
    std::map<int, double> all;
    for (size_t i = 0; i < paperFloors().size(); ++i) {
        const double floor = paperFloors()[i];
        const SuiteResult r = res.suite(h_ps[i]);
        const int key = static_cast<int>(floor * 100.0);
        for (const auto &run : r.runs) {
            reduction[run.workloadName][key] =
                1.0 - full.byName(run.workloadName).seconds /
                          run.seconds;
        }
        all[key] = 1.0 - full.totalSeconds() / r.totalSeconds();
    }

    struct Row
    {
        std::string name;
        double max_reduction;
    };
    std::vector<Row> rows;
    for (const auto &w : b.suite) {
        rows.push_back({w.name(),
                        1.0 - full.byName(w.name()).seconds /
                              slow.byName(w.name()).seconds});
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &c) {
        return a.max_reduction < c.max_reduction;
    });

    auto csv = maybeCsv("fig11_ps_perf");
    if (csv) {
        csv->row({"benchmark", "red_80", "red_60", "red_40", "red_20",
                  "bound_600"});
        for (const auto &r : rows) {
            csv->row({r.name, std::to_string(reduction[r.name][80]),
                      std::to_string(reduction[r.name][60]),
                      std::to_string(reduction[r.name][40]),
                      std::to_string(reduction[r.name][20]),
                      std::to_string(r.max_reduction)});
        }
    }
    TextTable t;
    t.header({"benchmark", "80% (%)", "60% (%)", "40% (%)", "20% (%)",
              "600MHz bound (%)", "violations"});
    for (const auto &r : rows) {
        std::string viol;
        for (double floor : paperFloors()) {
            const int key = static_cast<int>(floor * 100.0);
            if (reduction[r.name][key] > (1.0 - floor) + 0.01) {
                if (!viol.empty())
                    viol += ",";
                viol += std::to_string(key) + "%";
            }
        }
        t.row({r.name, TextTable::num(reduction[r.name][80] * 100.0, 1),
               TextTable::num(reduction[r.name][60] * 100.0, 1),
               TextTable::num(reduction[r.name][40] * 100.0, 1),
               TextTable::num(reduction[r.name][20] * 100.0, 1),
               TextTable::num(r.max_reduction * 100.0, 1),
               viol.empty() ? "-" : viol});
    }
    t.row({"ALLBENCH", TextTable::num(all[80] * 100.0, 1),
           TextTable::num(all[60] * 100.0, 1),
           TextTable::num(all[40] * 100.0, 1),
           TextTable::num(all[20] * 100.0, 1),
           TextTable::num(
               (1.0 - full.totalSeconds() / slow.totalSeconds()) *
                   100.0, 1),
           "-"});
    std::printf("%s\n", t.str().c_str());
    std::printf("paper: art (42.2%%) and mcf (27.7%%) violate the 80%% "
                "floor's allowed 20%% loss; art also violates at 60%% "
                "(54.3%% > 40%%). Memory-bound codes show the least "
                "reduction (left), core-bound the most (right).\n");
    return 0;
}
