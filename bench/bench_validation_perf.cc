/**
 * @file
 * Performance-model validation on the SPEC proxies: Equation 3's IPC
 * projection, measured. Each workload runs pinned at 2000 MHz to take
 * the (IPC, DCU) measurement, then pinned at the target states; the
 * table compares the model's projected IPC against the IPC actually
 * measured there. The in-between workloads (art, mcf, gap) carry the
 * largest errors — the root cause of the paper's PS floor violations.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();
    const PerfEstimator est = b.perfEstimator();
    CoreModel core(b.config.core);

    std::printf("Performance-model validation — Equation 3 projections "
                "from 2000 MHz\n(threshold %.2f, exponent %.2f)\n\n",
                est.threshold(), est.exponent());

    TextTable t;
    t.header({"benchmark", "class", "IPC@2000", "pred@1200",
              "meas@1200", "err (%)", "pred@600", "meas@600",
              "err (%)"});
    RunningStats err_mid, err_low;
    for (const auto &w : b.suite) {
        // Measure at the source state.
        const RunResult r2000 =
            b.platform.runAtPState(w, b.config.pstates.maxIndex());
        // Time-average IPC and DCU from the instrumentation trace.
        double ipc2000 = 0.0;
        for (const auto &s : r2000.trace.samples())
            ipc2000 += s.ipc;
        ipc2000 /= static_cast<double>(r2000.trace.samples().size());
        const double dcu = w.weightedAverage([&](const Phase &p) {
            return core.dcuOutstandingPerInstr(p, 2.0);
        }) * ipc2000;

        auto measure = [&](double mhz) {
            const RunResult r = b.platform.runAtPState(
                w, b.config.pstates.indexOfMhz(mhz));
            double ipc = 0.0;
            for (const auto &s : r.trace.samples())
                ipc += s.ipc;
            return ipc / static_cast<double>(r.trace.samples().size());
        };
        const double meas1200 = measure(1200.0);
        const double meas600 = measure(600.0);
        const double pred1200 =
            est.projectIpc(ipc2000, dcu, 2000.0, 1200.0);
        const double pred600 =
            est.projectIpc(ipc2000, dcu, 2000.0, 600.0);
        const double e_mid = (pred1200 - meas1200) / meas1200;
        const double e_low = (pred600 - meas600) / meas600;
        err_mid.add(std::abs(e_mid));
        err_low.add(std::abs(e_low));

        t.row({w.name(),
               est.isMemoryBound(ipc2000, dcu) ? "memory" : "core",
               TextTable::num(ipc2000, 3), TextTable::num(pred1200, 3),
               TextTable::num(meas1200, 3),
               TextTable::num(e_mid * 100.0, 1),
               TextTable::num(pred600, 3), TextTable::num(meas600, 3),
               TextTable::num(e_low * 100.0, 1)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("mean |error|: %.1f%% at 1200 MHz, %.1f%% at 600 MHz. "
                "core- and memory-extremes project well; the largest "
                "over-predictions sit on the in-between workloads "
                "(art, mcf) whose PS floors the paper reports "
                "violated.\n",
                err_mid.mean() * 100.0, err_low.mean() * 100.0);
    return 0;
}
