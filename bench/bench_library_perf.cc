/**
 * @file
 * Library hot-path microbenchmarks (google-benchmark): the costs that
 * bound simulation throughput — cache accesses, core-model advance,
 * governor decisions, PMU absorption, event-queue churn, model
 * training primitives.
 *
 * After the microbenchmarks, a standard PM+PS suite sweep is timed at
 * 1, 2 and N threads through the SweepRunner and the wall-clock, CPU
 * time, speedup and determinism results are written to
 * BENCH_sweep.json (override the path with AAPM_SWEEP_JSON) so the
 * perf trajectory of the experiment engine is tracked across PRs.
 *
 * The same sweep is then re-timed serially as a pure kernel-throughput
 * measurement (samples simulated per second), written to
 * BENCH_kernel.json (override with AAPM_KERNEL_JSON). A recorded
 * throughput more than 20% above the current build's fails the binary
 * unless AAPM_BENCH_NO_GUARD is set.
 *
 * A resilience baseline (PM under mixed-intensity fault plans, with
 * and without the GovernorSupervisor, plus a 256-core cluster under a
 * correlated domain-fault plan with and without supervision) is
 * written to BENCH_faults.json (override with AAPM_FAULTS_JSON). The
 * lower-is-better resilience numbers — mean recovery lengths and the
 * supervised cluster violation rate — carry the same 20% regression
 * guard as the throughput files, and a supervised cluster run whose
 * violation rate exceeds the unsupervised one fails outright.
 *
 * Finally a serving baseline (open-loop Poisson traffic on 64- and
 * 256-core power-capped clusters) is written to BENCH_serving.json
 * (override with AAPM_SERVING_JSON): requests stepped per wall-clock
 * second guards throughput, and the deterministic simulated p99 under
 * the cap guards the latency model, both at 20%.
 */

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "aapm.hh"

namespace
{

using namespace aapm;

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache({"L1", 32 * 1024, 64, 8, 3});
    Rng rng(1);
    uint64_t addr = 0;
    for (auto _ : state) {
        addr = (addr + 64) & ((1 << 16) - 1);
        benchmark::DoNotOptimize(cache.access(addr, false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_CacheAccessRandom(benchmark::State &state)
{
    Cache cache({"L2", 2 * 1024 * 1024, 64, 8, 10});
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 24) * 8, false));
    }
}
BENCHMARK(BM_CacheAccessRandom);

void
BM_HierarchyAccess(benchmark::State &state)
{
    MemoryHierarchy hier(HierarchyConfig{});
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hier.access(rng.below(1 << 22) * 8, false));
    }
}
BENCHMARK(BM_HierarchyAccess);

void
BM_CoreModelCpi(benchmark::State &state)
{
    CoreModel core;
    Phase p;
    p.instructions = 1000;
    p.baseCpi = 0.8;
    p.l1MissPerInstr = 0.05;
    p.l2MissPerInstr = 0.02;
    p.memPerInstr = 0.4;
    double f = 0.6;
    for (auto _ : state) {
        f = f >= 2.0 ? 0.6 : f + 0.2;
        benchmark::DoNotOptimize(core.cpi(p, f));
    }
}
BENCHMARK(BM_CoreModelCpi);

void
BM_CoreModelAdvance10ms(benchmark::State &state)
{
    CoreModel core;
    Phase p;
    p.instructions = 1ull << 62;
    p.baseCpi = 0.8;
    p.memPerInstr = 0.4;
    Workload w("w");
    w.add(p);
    WorkloadCursor cursor(w);
    std::vector<ExecChunk> chunks;
    for (auto _ : state) {
        chunks.clear();
        benchmark::DoNotOptimize(
            core.advance(cursor, 2.0, 10 * TicksPerMs, chunks));
    }
}
BENCHMARK(BM_CoreModelAdvance10ms);

void
BM_TruthPowerEval(benchmark::State &state)
{
    TruthPowerModel model;
    ActivityRates rates;
    rates.busyFrac = 0.8;
    rates.dpc = 1.5;
    rates.fpc = 0.4;
    rates.l2pc = 0.02;
    rates.buspc = 0.01;
    const PState ps{2000.0, 1.34};
    for (auto _ : state)
        benchmark::DoNotOptimize(model.power(rates, ps, 55.0));
}
BENCHMARK(BM_TruthPowerEval);

void
BM_PmDecide(benchmark::State &state)
{
    PerformanceMaximizer pm(PowerEstimator::paperPentiumM(),
                            PmConfig{.powerLimitW = 14.5});
    MonitorSample s;
    s.intervalSeconds = 0.01;
    s.cycles = 20'000'000;
    s.dpc = 1.3;
    s.pstate = 7;
    size_t current = 7;
    for (auto _ : state)
        benchmark::DoNotOptimize(current = pm.decide(s, current));
}
BENCHMARK(BM_PmDecide);

void
BM_PsDecide(benchmark::State &state)
{
    PowerSave ps(PStateTable::pentiumM(), PerfEstimator(1.21, 0.81),
                 PsConfig{0.8});
    MonitorSample s;
    s.intervalSeconds = 0.01;
    s.cycles = 20'000'000;
    s.ipc = 0.6;
    s.dcuPerCycle = 1.0;
    s.pstate = 7;
    size_t current = 7;
    for (auto _ : state)
        benchmark::DoNotOptimize(current = ps.decide(s, current));
}
BENCHMARK(BM_PsDecide);

void
BM_PmuAbsorb(benchmark::State &state)
{
    Pmu pmu;
    pmu.configure(0, PmuEvent::InstructionsRetired);
    pmu.configure(1, PmuEvent::DcuMissOutstanding);
    EventTotals e;
    e.cycles = 2e7;
    e.instructionsRetired = 1.5e7;
    e.dcuMissOutstanding = 4e6;
    for (auto _ : state)
        pmu.absorb(e);
}
BENCHMARK(BM_PmuAbsorb);

void
BM_SensorSample(benchmark::State &state)
{
    PowerSensor sensor(SensorConfig{});
    for (auto _ : state)
        benchmark::DoNotOptimize(sensor.sample(14.2));
}
BENCHMARK(BM_SensorSample);

void
BM_EventQueueChurn(benchmark::State &state)
{
    EventQueue eq;
    EventFunctionWrapper *self = nullptr;
    EventFunctionWrapper ev("tick", [&] {
        eq.schedule(self, eq.now() + 100);
    });
    self = &ev;
    eq.schedule(&ev, 100);
    for (auto _ : state)
        eq.step();
    eq.deschedule(&ev);
}
BENCHMARK(BM_EventQueueChurn);

void
BM_LadFit(benchmark::State &state)
{
    Rng rng(9);
    std::vector<double> xs, ys;
    for (int i = 0; i < 96; ++i) {
        xs.push_back(rng.uniform(0.0, 2.5));
        ys.push_back(3.0 * xs.back() + 12.0 + rng.gaussian(0.0, 0.4));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(fitLeastAbsolute(xs, ys));
}
BENCHMARK(BM_LadFit);

void
BM_PlatformRunSecond(benchmark::State &state)
{
    // End-to-end simulation throughput: one simulated second at a
    // fixed p-state (100 sampling intervals).
    Platform platform;
    Phase p;
    p.instructions = 2'000'000'000;
    p.baseCpi = 1.0;
    p.memPerInstr = 0.3;
    Workload w("w");
    w.add(p);
    for (auto _ : state) {
        RunOptions opts;
        opts.recordTrace = false;
        benchmark::DoNotOptimize(platform.runAtPState(w, 7, opts));
    }
}
BENCHMARK(BM_PlatformRunSecond)->Unit(benchmark::kMillisecond);

/** Process CPU time (user + system), seconds. */
double
processCpuSeconds()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
    auto tv_s = [](const timeval &tv) {
        return static_cast<double>(tv.tv_sec) +
               static_cast<double>(tv.tv_usec) * 1e-6;
    };
    return tv_s(ru.ru_utime) + tv_s(ru.ru_stime);
}

/** Calling thread's CPU time (user + system), seconds. */
double
threadCpuSeconds()
{
    struct rusage ru;
    if (getrusage(RUSAGE_THREAD, &ru) != 0)
        return 0.0;
    auto tv_s = [](const timeval &tv) {
        return static_cast<double>(tv.tv_sec) +
               static_cast<double>(tv.tv_usec) * 1e-6;
    };
    return tv_s(ru.ru_utime) + tv_s(ru.ru_stime);
}

/**
 * The standard sweep the engine is judged by: every paper PM limit and
 * PS floor over a shortened SPEC proxy suite, untrained (paper-constant
 * estimators), traces off.
 */
std::vector<RunResult>
timedSweep(const PlatformConfig &config,
           const std::vector<Workload> &suite, size_t jobs,
           double *seconds_out, double *cpu_seconds_out = nullptr,
           bool force_chunked = false, IntervalTracer *tracer = nullptr,
           double *thread_cpu_out = nullptr)
{
    SweepRunner runner(config, jobs);
    SweepGrid grid;
    RunOptions options;
    options.recordTrace = false;
    options.forceChunkedKernel = force_chunked;
    options.tracer = tracer;
    const PowerEstimator power = PowerEstimator::paperPentiumM();
    const PerfEstimator perf;
    for (double limit : {17.5, 14.5, 11.5}) {
        grid.addSuite(suite, [power, limit] {
            return std::make_unique<PerformanceMaximizer>(
                power, PmConfig{.powerLimitW = limit});
        }, options);
    }
    for (double floor : {0.8, 0.4}) {
        grid.addSuite(suite, [&config, perf, floor] {
            return std::make_unique<PowerSave>(config.pstates, perf,
                                               PsConfig{floor});
        }, options);
    }
    const auto start = std::chrono::steady_clock::now();
    const double cpu_start = processCpuSeconds();
    const double thr_start = threadCpuSeconds();
    SweepResults results = runner.run(grid);
    // With jobs == 1 the SweepRunner executes every run in the calling
    // thread, so this is the simulation/producer thread's own CPU —
    // background threads (e.g. a trace flush thread) are excluded.
    const double thr_elapsed = threadCpuSeconds() - thr_start;
    const double cpu_elapsed = processCpuSeconds() - cpu_start;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    *seconds_out = elapsed.count();
    if (cpu_seconds_out)
        *cpu_seconds_out = cpu_elapsed;
    if (thread_cpu_out)
        *thread_cpu_out = thr_elapsed;
    return results.runs();
}

bool
identicalRuns(const std::vector<RunResult> &a,
              const std::vector<RunResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].seconds != b[i].seconds ||
            a[i].instructions != b[i].instructions ||
            a[i].trueEnergyJ != b[i].trueEnergyJ ||
            a[i].measuredEnergyJ != b[i].measuredEnergyJ) {
            return false;
        }
    }
    return true;
}

void
emitSweepTimings()
{
    const PlatformConfig config;
    const std::vector<Workload> suite = specSuite(config.core, 20.0);

    const size_t n = ThreadPool::defaultJobs();
    std::set<size_t> counts = {1, 2, n};

    std::vector<RunResult> serial_runs;
    double serial_s = 0.0;
    struct Timing
    {
        size_t threads;
        double seconds;
        double cpuSeconds;
        double speedup;
    };
    std::vector<Timing> timings;
    bool identical = true;
    for (size_t jobs : counts) {
        // Best of three: the sweep is short enough that a single
        // measurement is at the mercy of scheduler noise.
        double s = 0.0;
        double cpu_s = 0.0;
        std::vector<RunResult> runs;
        for (int rep = 0; rep < 3; ++rep) {
            double rep_s = 0.0;
            double rep_cpu = 0.0;
            auto rep_runs =
                timedSweep(config, suite, jobs, &rep_s, &rep_cpu);
            if (rep == 0 || rep_s < s) {
                s = rep_s;
                cpu_s = rep_cpu;
                runs = std::move(rep_runs);
            }
        }
        if (jobs == 1) {
            serial_runs = runs;
            serial_s = s;
        } else {
            identical = identical && identicalRuns(serial_runs, runs);
        }
        timings.push_back(
            {jobs, s, cpu_s, serial_s > 0.0 ? serial_s / s : 1.0});
        // CPU time exposes oversubscription that wall clock hides: on
        // a single-core host every thread count burns the same CPU and
        // the "speedup" column is pure scheduler noise.
        std::printf("sweep %3zu thread%s: %7.3f s wall, %7.3f s cpu  "
                    "(speedup %.2fx)\n",
                    jobs, jobs == 1 ? " " : "s", s, cpu_s,
                    timings.back().speedup);
    }
    std::printf("serial vs parallel results bit-identical: %s\n",
                identical ? "yes" : "NO");

    const char *jobs_env = std::getenv("AAPM_JOBS");
    const char *path = std::getenv("AAPM_SWEEP_JSON");
    std::ofstream out(path && *path ? path : "BENCH_sweep.json");
    out.precision(6);
    out << "{\n"
        << "  \"benchmark\": \"pm_ps_suite_sweep\",\n"
        << "  \"runs_per_sweep\": " << 5 * suite.size() << ",\n"
        << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "  \"aapm_jobs_env\": "
        << (jobs_env ? "\"" + std::string(jobs_env) + "\"" : "null")
        << ",\n"
        << "  \"default_jobs\": " << n << ",\n"
        << "  \"bit_identical\": " << (identical ? "true" : "false")
        << ",\n"
        << "  \"timings\": [\n";
    for (size_t i = 0; i < timings.size(); ++i) {
        out << "    {\"threads\": " << timings[i].threads
            << ", \"seconds\": " << timings[i].seconds
            << ", \"cpu_seconds\": " << timings[i].cpuSeconds
            << ", \"speedup\": " << timings[i].speedup << "}"
            << (i + 1 < timings.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

/**
 * Read the lower-is-better resilience values recorded in an existing
 * BENCH_faults.json: the per-intensity mean recovery lengths (keyed
 * "recovery@<intensity>") and the cluster row's supervised violation
 * rate and mean recovery ("cluster_violation_sup",
 * "cluster_recovery"). Empty when the file is absent. Relies on the
 * layout emitFaultBaseline() writes: intensity and its
 * mean_recovery_intervals on one line, the cluster object one key per
 * line after a "cluster": line.
 */
std::map<std::string, double>
recordedFaultsBaseline(const std::string &path)
{
    std::map<std::string, double> recorded;
    std::ifstream in(path);
    if (!in)
        return recorded;
    std::string line;
    bool in_cluster = false;
    while (std::getline(in, line)) {
        if (line.find("\"cluster\":") != std::string::npos)
            in_cluster = true;
        const auto value = [&line](const std::string &key, double &out) {
            const size_t pos = line.find("\"" + key + "\":");
            if (pos == std::string::npos)
                return false;
            out = std::strtod(line.c_str() + pos + key.size() + 3,
                              nullptr);
            return true;
        };
        double intensity = 0.0, v = 0.0;
        if (value("intensity", intensity) &&
            value("mean_recovery_intervals", v)) {
            char key[64];
            std::snprintf(key, sizeof key, "recovery@%g", intensity);
            recorded[key] = v;
            continue;
        }
        if (!in_cluster)
            continue;
        if (value("violation_rate_supervised", v))
            recorded["cluster_violation_sup"] = v;
        else if (value("mean_recovery_intervals", v))
            recorded["cluster_recovery"] = v;
    }
    return recorded;
}

/**
 * Resilience baseline: the PM governor over the shortened suite with a
 * tight power limit, at three mixed-fault intensities, with and
 * without the GovernorSupervisor. Records the suite-aggregate power-
 * limit violation rate (ground truth, 100 ms windows) and the mean
 * length of a recovery (degraded intervals per fallback entry) to
 * BENCH_faults.json (override with AAPM_FAULTS_JSON), so the
 * resilience trajectory is tracked across PRs alongside throughput.
 *
 * A 256-core cluster row follows: a correlated DomainFaultPlan (node
 * sensor brownout, node PMU blackout, a stuck actuator, one global
 * and one rack-scope budget drop) against a 4x8x8 budget tree, run
 * clean, unsupervised (bare PM cores, global drops as budget
 * commands) and supervised (GovernorSupervisor-wrapped cores plus the
 * ClusterSupervisor quarantining and shedding). All three runs are
 * deterministic, so their violation rates are exact, comparable
 * numbers rather than samples.
 *
 * Regression gate (same contract as the throughput guards, inverted
 * for lower-is-better values): a recorded mean recovery or supervised
 * cluster violation rate more than 20% *below* this build's fails the
 * binary and leaves the file untouched; a supervised cluster
 * violation rate above the unsupervised one fails regardless of any
 * recording. AAPM_BENCH_NO_GUARD=1 overrides.
 */
int
emitFaultBaseline()
{
    const PlatformConfig config;
    const std::vector<Workload> suite = specSuite(config.core, 3.0);
    const double limit = 11.5;
    const auto power = std::make_shared<PowerEstimator>(
        PowerEstimator::paperPentiumM());

    const auto pm_factory = [power, limit] {
        return std::make_unique<PerformanceMaximizer>(
            *power, PmConfig{.powerLimitW = limit});
    };
    const auto sup_factory =
        [power, limit]() -> std::unique_ptr<Governor> {
        return std::make_unique<GovernorSupervisor>(
            std::make_unique<PerformanceMaximizer>(
                *power, PmConfig{.powerLimitW = limit}),
            SupervisorConfig(), power.get());
    };

    SweepRunner runner(config);
    SweepGrid grid;
    const size_t clean_handle = grid.addSuite(suite, pm_factory);
    const std::vector<double> intensities = {0.02, 0.05, 0.1};
    std::vector<std::pair<size_t, size_t>> handles;   // (unsup, sup)
    for (double p : intensities) {
        RunOptions opts;
        opts.faultPlan = FaultPlan::mixed(p);
        handles.emplace_back(grid.addSuite(suite, pm_factory, opts),
                             grid.addSuite(suite, sup_factory, opts));
    }
    const SweepResults results = runner.run(grid);

    const auto violation = [&](const SuiteResult &sr) {
        // Aggregate over the whole suite: over-limit windows divided
        // by total windows, not a per-run mean, so long benchmarks
        // weigh in proportionally.
        double over = 0.0, total = 0.0;
        for (const RunResult &r : sr.runs) {
            const double n =
                static_cast<double>(r.trace.samples().size());
            over += r.trace.fractionOverLimitTrue(limit, 10) * n;
            total += n;
        }
        return total > 0.0 ? over / total : 0.0;
    };
    const auto mean_recovery = [](const RecoveryTelemetry &t) {
        return t.fallbackEntries > 0
            ? static_cast<double>(t.degradedIntervals) /
                  static_cast<double>(t.fallbackEntries)
            : 0.0;
    };

    const double clean_rate = violation(results.suite(clean_handle));
    std::printf("faults: clean violation rate %.4f (PM @ %.1f W)\n",
                clean_rate, limit);

    struct IntensityRow
    {
        double intensity, unsupRate, supRate, recovery;
        RecoveryTelemetry tel;
    };
    std::vector<IntensityRow> rows;
    for (size_t i = 0; i < intensities.size(); ++i) {
        const SuiteResult unsup = results.suite(handles[i].first);
        const SuiteResult sup = results.suite(handles[i].second);
        const RecoveryTelemetry tel = sup.totalRecovery();
        rows.push_back({intensities[i], violation(unsup),
                        violation(sup), mean_recovery(tel), tel});
        std::printf("faults: mixed %.2f violation rate %.4f unsup, "
                    "%.4f sup (%.1f mean recovery intervals)\n",
                    rows.back().intensity, rows.back().unsupRate,
                    rows.back().supRate, rows.back().recovery);
    }

    // The 256-core cluster arm: the same fault kinds, but correlated
    // by topology and judged by the cluster's own ground-truth budget
    // violation counter instead of per-run traces.
    const size_t cluster_cores = 256;
    const std::string topology = "4x8x8";
    const std::vector<size_t> fanout = {4, 8, 8};
    const double cluster_budget = limit * cluster_cores;
    const std::string tree_spec = "tree:4x8x8:uniform,demand,greedy";
    const std::string plan_spec =
        "node[3]@0.3:sensor-brownout:40;"
        "node[12]@0.5:pmu-dropout:40;"
        "socket[9]@0.8:dvfs-stuck:30;"
        "cluster@0.9:budget-drop:20:0.25;"
        "rack[2]@1.2:budget-drop:25:0.4";

    const DomainFaultPlan plan = DomainFaultPlan::parse(plan_spec);
    const DerivedDomainFaults derived = deriveDomainFaults(
        plan, FaultPlan(), fanout, cluster_cores, plan.seed);
    std::vector<BudgetDropEvent> subtree_drops;
    for (const BudgetDropEvent &d : derived.drops)
        if (d.coreBegin != 0 || d.coreEnd != cluster_cores)
            subtree_drops.push_back(d);

    const PlatformConfig cluster_config;
    const PerfEstimator cluster_perf;
    // ~2 simulated seconds per core so every fault window (the last
    // ends at 1.45 s) plays out while all cores are still stepping;
    // alternating compute/memory mixes keeps the demand split honest.
    Phase compute;
    compute.instructions = 4'400'000'000;
    compute.baseCpi = 1.0;
    compute.memPerInstr = 0.25;
    Phase memory;
    memory.instructions = 3'200'000'000;
    memory.baseCpi = 1.1;
    memory.memPerInstr = 0.45;
    Workload compute_w("cluster-compute");
    compute_w.add(compute);
    Workload memory_w("cluster-memory");
    memory_w.add(memory);

    const GovernorFactory cluster_pm_factory = [power, limit] {
        return std::make_unique<PerformanceMaximizer>(
            *power, PmConfig{.powerLimitW = limit});
    };
    const GovernorFactory cluster_sup_factory =
        [power, limit]() -> std::unique_ptr<Governor> {
        return std::make_unique<GovernorSupervisor>(
            std::make_unique<PerformanceMaximizer>(
                *power, PmConfig{.powerLimitW = limit}),
            SupervisorConfig(), power.get());
    };

    const auto make_cluster = [&](bool faulted,
                                  const GovernorFactory &factory) {
        ClusterConfig cc;
        for (size_t i = 0; i < cluster_cores; ++i) {
            ClusterCoreConfig core;
            core.platform = cluster_config;
            core.workload = i % 2 == 0 ? &compute_w : &memory_w;
            core.governor = factory;
            core.powerModel = power.get();
            core.perfModel = &cluster_perf;
            if (faulted)
                core.options.faultPlan = derived.perCore[i];
            cc.cores.push_back(std::move(core));
        }
        cc.budgetW = cluster_budget;
        cc.recordTrace = false;
        if (faulted)
            cc.budgetCommands = budgetDropCommands(
                derived.drops, cluster_budget,
                cluster_config.sampleInterval, cluster_cores);
        return cc;
    };

    ThreadPool pool;
    const auto tree = makeAllocator(tree_spec);
    ClusterPlatform clean_cluster(make_cluster(false, cluster_pm_factory));
    const ClusterResult clean_run = clean_cluster.run(*tree, &pool);
    ClusterPlatform unsup_cluster(make_cluster(true, cluster_pm_factory));
    const ClusterResult unsup_run = unsup_cluster.run(*tree, &pool);
    ClusterSupervisor supervisor(ClusterSupervisorConfig(),
                                 subtree_drops);
    ClusterConfig sup_cc = make_cluster(true, cluster_sup_factory);
    sup_cc.supervisor = &supervisor;
    ClusterPlatform sup_cluster(std::move(sup_cc));
    const ClusterResult sup_run = sup_cluster.run(*tree, &pool);

    const double cluster_clean = clean_run.fractionOverBudgetTrue;
    const double cluster_unsup = unsup_run.fractionOverBudgetTrue;
    const double cluster_sup = sup_run.fractionOverBudgetTrue;
    const double cluster_recovery = mean_recovery(sup_run.recovery);
    const ClusterResilienceStats &rs = sup_run.resilience;
    std::printf("faults: cluster %zu cores clean %.4f, domain plan "
                "%.4f unsup, %.4f sup (%.1f mean recovery intervals)\n",
                cluster_cores, cluster_clean, cluster_unsup,
                cluster_sup, cluster_recovery);
    std::printf("faults: cluster supervisor %llu quarantines "
                "(%llu core-intervals, %llu readmissions), %llu "
                "drops, %llu shed intervals (%.1f Watt-intervals)\n",
                static_cast<unsigned long long>(rs.quarantineEntries),
                static_cast<unsigned long long>(rs.quarantineIntervals),
                static_cast<unsigned long long>(rs.readmissions),
                static_cast<unsigned long long>(rs.budgetDropsApplied),
                static_cast<unsigned long long>(rs.shedIntervals),
                rs.shedWattIntervals);

    const char *path_env = std::getenv("AAPM_FAULTS_JSON");
    const std::string path =
        path_env && *path_env ? path_env : "BENCH_faults.json";
    const auto recorded = recordedFaultsBaseline(path);
    const bool guard_off = std::getenv("AAPM_BENCH_NO_GUARD") != nullptr;
    bool regressed = false;
    // Lower-is-better guard: fail when the current value exceeds the
    // recorded one by >20% plus an absolute slack (nonzero only for
    // rates, where a 20% band around a near-zero recording would
    // otherwise trip on any model change).
    const auto guard = [&](const std::string &key, double current,
                           double slack, const std::string &what) {
        const auto it = recorded.find(key);
        if (it == recorded.end() || it->second <= 0.0)
            return;
        if (current > 1.2 * it->second + slack) {
            std::fprintf(stderr,
                         "resilience regression: %s is %.4f, >20%% "
                         "worse than the recorded %.4f in %s\n",
                         what.c_str(), current, it->second,
                         path.c_str());
            regressed = true;
        }
    };
    for (const IntensityRow &row : rows) {
        char key[64], what[96];
        std::snprintf(key, sizeof key, "recovery@%g", row.intensity);
        std::snprintf(what, sizeof what,
                      "mean recovery at intensity %g", row.intensity);
        guard(key, row.recovery, 0.0, what);
    }
    guard("cluster_recovery", cluster_recovery, 0.0,
          "cluster mean recovery");
    guard("cluster_violation_sup", cluster_sup, 0.01,
          "supervised cluster violation rate");
    if (cluster_sup > cluster_unsup + 1e-9) {
        std::fprintf(stderr,
                     "cluster resilience regression: supervised "
                     "violation rate %.4f exceeds unsupervised %.4f\n",
                     cluster_sup, cluster_unsup);
        regressed = true;
    }
    if (regressed && !guard_off) {
        std::fprintf(stderr,
                     "set AAPM_BENCH_NO_GUARD=1 to override\n");
        return 1;
    }

    std::ofstream out(path);
    out.precision(6);
    out << "{\n"
        << "  \"benchmark\": \"mixed_fault_resilience\",\n"
        << "  \"governor\": \"pm\",\n"
        << "  \"limit_w\": " << limit << ",\n"
        << "  \"suite_runs\": " << suite.size() << ",\n"
        << "  \"clean_violation_rate\": " << clean_rate << ",\n"
        << "  \"intensities\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const IntensityRow &row = rows[i];
        out << "    {\"intensity\": " << row.intensity
            << ", \"violation_rate_unsupervised\": " << row.unsupRate
            << ", \"violation_rate_supervised\": " << row.supRate
            << ", \"mean_recovery_intervals\": " << row.recovery
            << ",\n     \"faults_seen\": " << row.tel.faultsSeen()
            << ", \"recovery_actions\": " << row.tel.recoveryActions()
            << ", \"fallback_entries\": " << row.tel.fallbackEntries
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"cluster\": {\n"
        << "    \"cores\": " << cluster_cores << ",\n"
        << "    \"topology\": \"" << topology << "\",\n"
        << "    \"allocator\": \"" << tree_spec << "\",\n"
        << "    \"budget_w\": " << cluster_budget << ",\n"
        << "    \"domain_plan\": \"" << plan_spec << "\",\n"
        << "    \"clean_violation_rate\": " << cluster_clean << ",\n"
        << "    \"violation_rate_unsupervised\": " << cluster_unsup
        << ",\n"
        << "    \"violation_rate_supervised\": " << cluster_sup << ",\n"
        << "    \"mean_recovery_intervals\": " << cluster_recovery
        << ",\n"
        << "    \"quarantine_entries\": " << rs.quarantineEntries
        << ",\n"
        << "    \"quarantine_intervals\": " << rs.quarantineIntervals
        << ",\n"
        << "    \"readmissions\": " << rs.readmissions << ",\n"
        << "    \"budget_drops_applied\": " << rs.budgetDropsApplied
        << ",\n"
        << "    \"shed_intervals\": " << rs.shedIntervals << ",\n"
        << "    \"shed_watt_intervals\": " << rs.shedWattIntervals
        << "\n"
        << "  }\n"
        << "}\n";
    return 0;
}

/**
 * Read the samples-per-second value recorded in an existing
 * BENCH_kernel.json; 0.0 when the file or field is absent.
 */
double
recordedKernelThroughput(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return 0.0;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const std::string key = "\"samples_per_sec\":";
    const size_t pos = text.find(key);
    if (pos == std::string::npos)
        return 0.0;
    return std::strtod(text.c_str() + pos + key.size(), nullptr);
}

/**
 * Time the batched simulation kernel on the standard 130-run PM+PS
 * sweep, serially (jobs = 1, so the number is a pure kernel
 * throughput, not a scheduling result), and write BENCH_kernel.json
 * (override the path with AAPM_KERNEL_JSON).
 *
 * Acts as a regression gate: if an earlier BENCH_kernel.json recorded
 * a throughput more than 20% above what this build achieves, the
 * recorded file is left untouched and a non-zero status is returned so
 * CI fails. Set AAPM_BENCH_NO_GUARD=1 to record the regressed number
 * anyway (e.g. after an intentional trade-off or on a slower host).
 */
int
emitKernelTimings()
{
    const PlatformConfig config;
    const std::vector<Workload> suite = specSuite(config.core, 20.0);
    const double interval_s = ticksToSeconds(config.sampleInterval);

    // Best of five, with the no-tracer and disabled-tracer
    // configurations interleaved rep-for-rep: hosts that throttle or
    // time-share drift monotonically over a process's lifetime, and
    // timing the two configurations in separate back-to-back blocks
    // folds that drift into their ratio. A tracer attached with
    // every=0 exercises the full per-interval tracing check without
    // capturing anything — the configuration the <2% overhead budget
    // is written against.
    NullTraceSink disabled_sink;
    IntervalTracer disabled(disabled_sink, 0);
    double fast_s = 0.0;
    double disabled_s = 0.0;
    std::vector<RunResult> runs;
    for (int rep = 0; rep < 5; ++rep) {
        double rep_s = 0.0;
        auto rep_runs = timedSweep(config, suite, 1, &rep_s);
        if (rep == 0 || rep_s < fast_s) {
            fast_s = rep_s;
            runs = std::move(rep_runs);
        }
        double dis_s = 0.0;
        timedSweep(config, suite, 1, &dis_s, nullptr, false, &disabled);
        if (rep == 0 || dis_s < disabled_s)
            disabled_s = dis_s;
    }
    double chunked_s = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        double rep_s = 0.0;
        timedSweep(config, suite, 1, &rep_s, nullptr, true);
        if (rep == 0 || rep_s < chunked_s)
            chunked_s = rep_s;
    }

    // Full-capture cost against the production path: every interval
    // appended through a real BinaryTraceSink writing an actual file.
    // Two numbers come out of a rep-paired (drift-cancelling) loop:
    //
    //   trace_overhead_frac       producer-thread CPU (RUSAGE_THREAD)
    //   trace_wall_overhead_frac  wall clock, informational
    //
    // The guarded metric is the producer's CPU because that is the
    // synchronous cost tracing adds to the simulation: encoding,
    // transposition and I/O run on the flush thread by design and
    // overlap with simulation on any host with a spare core. Wall
    // clock on a single-core bench host serializes the flush thread
    // into the same core and double-counts that asynchronous work, so
    // it is recorded but not guarded.
    const std::string trace_scratch = "bench_kernel_trace.tmp.bin";
    double traced_s = 0.0, traced_cpu = 0.0;
    double base_s = 0.0, base_cpu = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
        double rep_s = 0.0, rep_cpu = 0.0;
        timedSweep(config, suite, 1, &rep_s, nullptr, false, nullptr,
                   &rep_cpu);
        if (rep == 0 || rep_s < base_s)
            base_s = rep_s;
        if (rep == 0 || rep_cpu < base_cpu)
            base_cpu = rep_cpu;
        BinaryTraceSink sink(trace_scratch);
        IntervalTracer full(sink, 1);
        double t_s = 0.0, t_cpu = 0.0;
        timedSweep(config, suite, 1, &t_s, nullptr, false, &full,
                   &t_cpu);
        if (rep == 0 || t_s < traced_s)
            traced_s = t_s;
        if (rep == 0 || t_cpu < traced_cpu)
            traced_cpu = t_cpu;
    }
    std::remove(trace_scratch.c_str());

    double samples = 0.0;
    for (const RunResult &r : runs)
        samples += r.seconds / interval_s;
    const double samples_per_sec = fast_s > 0.0 ? samples / fast_s : 0.0;
    const double chunked_per_sec =
        chunked_s > 0.0 ? samples / chunked_s : 0.0;
    const double disabled_frac =
        fast_s > 0.0 ? disabled_s / fast_s - 1.0 : 0.0;
    const double traced_frac =
        base_cpu > 0.0 ? traced_cpu / base_cpu - 1.0 : 0.0;
    const double traced_wall_frac =
        base_s > 0.0 ? traced_s / base_s - 1.0 : 0.0;
    // On a single-hardware-thread host the flush thread time-shares
    // the producer's core, so the wall number double-counts work that
    // overlaps simulation everywhere else; flag it informational-only
    // there so baseline consumers don't read it as a cost.
    const bool wall_meaningful = traceWallOverheadMeaningful(
        std::thread::hardware_concurrency());
    std::printf("kernel: %zu runs, %.0f samples, %.3f s "
                "(%.2f Msamples/s; chunked ref %.2f Msamples/s, "
                "fast path %.2fx)\n",
                runs.size(), samples, fast_s, samples_per_sec / 1e6,
                chunked_per_sec / 1e6,
                chunked_s > 0.0 ? chunked_s / fast_s : 0.0);
    std::printf("obs: tracer disabled %+.2f%%, full binary capture "
                "%+.2f%% producer cpu (%+.2f%% wall%s)\n",
                disabled_frac * 100.0, traced_frac * 100.0,
                traced_wall_frac * 100.0,
                wall_meaningful
                    ? ""
                    : ", informational only: single-core host "
                      "serializes the flush thread");

    const char *path_env = std::getenv("AAPM_KERNEL_JSON");
    const std::string path =
        path_env && *path_env ? path_env : "BENCH_kernel.json";

    const double recorded = recordedKernelThroughput(path);
    const bool guard_off = std::getenv("AAPM_BENCH_NO_GUARD") != nullptr;
    if (disabled_frac > 0.02 && !guard_off) {
        std::fprintf(stderr,
                     "observability overhead regression: a disabled "
                     "tracer costs %.2f%% wall-clock (budget: 2%%; set "
                     "AAPM_BENCH_NO_GUARD=1 to override)\n",
                     disabled_frac * 100.0);
        return 1;
    }
    if (recorded > 0.0 && samples_per_sec < 0.8 * recorded &&
        !guard_off) {
        std::fprintf(stderr,
                     "kernel throughput regression: %.3f Msamples/s is "
                     ">20%% below the recorded %.3f Msamples/s in %s "
                     "(set AAPM_BENCH_NO_GUARD=1 to override)\n",
                     samples_per_sec / 1e6, recorded / 1e6, path.c_str());
        return 1;
    }
    // Absolute budget on full capture through the binary sink. The
    // measured producer cost is ~0.25-0.40 depending on host state
    // (~18 ns per record on top of a ~72 ns interval, with day-to-day
    // shared-host drift of +-10 points); 0.5 leaves headroom for that
    // drift while still catching a fall-back to the formatting path
    // (~1.2) or any substantial new per-record work.
    if (traced_frac > 0.5 && !guard_off) {
        std::fprintf(stderr,
                     "trace overhead regression: full binary capture "
                     "costs %.1f%% producer cpu (budget: 50%%; set "
                     "AAPM_BENCH_NO_GUARD=1 to override)\n",
                     traced_frac * 100.0);
        return 1;
    }

    std::ofstream out(path);
    out.precision(6);
    out << "{\n"
        << "  \"benchmark\": \"kernel_throughput\",\n"
        << "  \"sweep_runs\": " << runs.size() << ",\n"
        << "  \"samples\": " << samples << ",\n"
        << "  \"seconds\": " << fast_s << ",\n"
        << "  \"samples_per_sec\": " << samples_per_sec << ",\n"
        << "  \"chunked_seconds\": " << chunked_s << ",\n"
        << "  \"chunked_samples_per_sec\": " << chunked_per_sec << ",\n"
        << "  \"fast_path_speedup\": "
        << (chunked_s > 0.0 ? chunked_s / fast_s : 0.0) << ",\n"
        << "  \"tracer_disabled_seconds\": " << disabled_s << ",\n"
        << "  \"tracer_disabled_overhead_frac\": " << disabled_frac
        << ",\n"
        << "  \"trace_sink\": \"binary\",\n"
        << "  \"trace_seconds\": " << traced_s << ",\n"
        << "  \"trace_cpu_seconds\": " << traced_cpu << ",\n"
        << "  \"trace_overhead_frac\": " << traced_frac << ",\n"
        << "  \"trace_wall_overhead_frac\": " << traced_wall_frac
        << ",\n"
        << "  \"trace_wall_overhead_informational\": "
        << (wall_meaningful ? "false" : "true") << "\n"
        << "}\n";
    return 0;
}

/**
 * Read the per-(allocator, cores) core-intervals-per-second baselines
 * recorded in an existing BENCH_cluster.json, keyed "allocator@cores";
 * empty when the file is absent. Relies on the one-config-per-line
 * layout emitClusterTimings() writes.
 */
std::map<std::string, double>
recordedClusterConfigs(const std::string &path)
{
    std::map<std::string, double> recorded;
    std::ifstream in(path);
    if (!in)
        return recorded;
    std::string line;
    while (std::getline(in, line)) {
        const std::string cores_key = "\"cores\":";
        const std::string alloc_key = "\"allocator\": \"";
        const std::string rate_key = "\"core_intervals_per_sec\":";
        const size_t cores_pos = line.find(cores_key);
        const size_t alloc_pos = line.find(alloc_key);
        const size_t rate_pos = line.find(rate_key);
        if (cores_pos == std::string::npos ||
            alloc_pos == std::string::npos ||
            rate_pos == std::string::npos)
            continue;
        const size_t name_at = alloc_pos + alloc_key.size();
        const size_t name_end = line.find('"', name_at);
        if (name_end == std::string::npos)
            continue;
        const long cores = std::strtol(
            line.c_str() + cores_pos + cores_key.size(), nullptr, 10);
        const double rate = std::strtod(
            line.c_str() + rate_pos + rate_key.size(), nullptr);
        recorded[line.substr(name_at, name_end - name_at) + "@" +
                 std::to_string(cores)] = rate;
    }
    return recorded;
}

/**
 * Cluster-step throughput: one simulated second per core under PM,
 * from 1 to 1024 cores, for each flat allocator policy plus a
 * hierarchical budget tree at the datacenter scales, intervals fanned
 * out over the default pool. At 256 cores an extra "uniform+trace"
 * row runs with full per-core binary tracing (one shared flush
 * thread), so the traced-cluster cost is tracked and guarded like any
 * other configuration. The metric is core-intervals simulated
 * per wall-clock second — the cluster analogue of kernel samples/s —
 * and is written to BENCH_cluster.json (override with
 * AAPM_CLUSTER_JSON).
 *
 * Regression gate (same contract as the kernel guard, but per
 * configuration so a greedy-only collapse cannot hide behind the
 * uniform number): if an earlier BENCH_cluster.json recorded any
 * (allocator, cores) throughput more than 20% above this build's, the
 * file is left untouched and a non-zero status is returned.
 * AAPM_BENCH_NO_GUARD=1 overrides.
 */
int
emitClusterTimings()
{
    const PlatformConfig config;
    const PowerEstimator power = PowerEstimator::paperPentiumM();
    const PerfEstimator perf;

    // One simulated second of a mixed compute/memory phase per core.
    Phase p;
    p.instructions = 2'000'000'000;
    p.baseCpi = 1.0;
    p.memPerInstr = 0.3;
    Workload w("cluster-bench");
    w.add(p);

    const GovernorFactory pm_factory = [&power] {
        return std::make_unique<PerformanceMaximizer>(
            power, PmConfig{.powerLimitW = 12.0});
    };

    // Budget-tree shapes for the datacenter scales (product = cores),
    // mixing policies so every level engine is exercised.
    const std::map<size_t, std::string> tree_specs = {
        {64, "tree:4x4x4:uniform,demand,greedy"},
        {256, "tree:4x8x8:uniform,demand,greedy"},
        {1024, "tree:2x4x8x16:uniform,demand,demand,greedy"},
    };

    ThreadPool pool;
    struct Timing
    {
        size_t cores;
        std::string allocator;
        double seconds;
        uint64_t intervals;
        double coreIntervalsPerSec;
    };
    std::vector<Timing> timings;
    for (size_t cores : {1u, 4u, 16u, 64u, 256u, 1024u}) {
        ClusterConfig cc;
        for (size_t i = 0; i < cores; ++i) {
            ClusterCoreConfig core;
            core.platform = config;
            core.workload = &w;
            core.governor = pm_factory;
            core.powerModel = &power;
            core.perfModel = &perf;
            cc.cores.push_back(std::move(core));
        }
        cc.budgetW = 12.0 * static_cast<double>(cores);
        cc.recordTrace = false;
        ClusterPlatform cluster(cc);
        std::vector<std::string> specs = allocatorNames();
        const auto tree = tree_specs.find(cores);
        if (tree != tree_specs.end())
            specs.push_back(tree->second);
        // Fewer best-of reps at the scales where a single run is long
        // enough to be stable.
        const int reps = cores >= 256 ? 2 : 3;
        for (const std::string &spec : specs) {
            const auto allocator = makeAllocator(spec);
            double best_s = 0.0;
            uint64_t intervals = 0;
            for (int rep = 0; rep < reps; ++rep) {
                const auto start = std::chrono::steady_clock::now();
                const ClusterResult r = cluster.run(*allocator, &pool);
                const std::chrono::duration<double> elapsed =
                    std::chrono::steady_clock::now() - start;
                if (rep == 0 || elapsed.count() < best_s) {
                    best_s = elapsed.count();
                    intervals = r.intervals;
                }
            }
            const double per_sec = best_s > 0.0
                ? static_cast<double>(intervals * cores) / best_s
                : 0.0;
            timings.push_back({cores, allocator->name(), best_s,
                               intervals, per_sec});
            std::printf("cluster: %4zu cores %-8s %7.3f s "
                        "(%5llu intervals, %8.0f core-intervals/s)\n",
                        cores, allocator->name(), best_s,
                        static_cast<unsigned long long>(intervals),
                        per_sec);
        }

        // Fully-traced row at the mid datacenter scale: every core
        // captures every interval through a per-core binary sink, all
        // sinks sharing one flush thread (the ClusterPlatform/aapm
        // deployment shape). Keyed "uniform+trace" so the recorded-
        // baseline guard tracks it independently of the untraced
        // uniform row.
        if (cores == 256) {
            TraceFlushThread flush;
            std::vector<std::unique_ptr<BinaryTraceSink>> sinks;
            std::vector<std::unique_ptr<IntervalTracer>> tracers;
            ClusterConfig tcc = cc;
            for (size_t i = 0; i < cores; ++i) {
                sinks.push_back(std::make_unique<BinaryTraceSink>(
                    "bench_cluster_trace.core" + std::to_string(i) +
                        ".tmp.bin",
                    &flush));
                tracers.push_back(std::make_unique<IntervalTracer>(
                    *sinks.back(), 1));
                tcc.cores[i].options.tracer = tracers.back().get();
            }
            ClusterPlatform traced_cluster(tcc);
            const auto allocator = makeAllocator("uniform");
            double best_s = 0.0;
            uint64_t intervals = 0;
            for (int rep = 0; rep < 2; ++rep) {
                const auto start = std::chrono::steady_clock::now();
                const ClusterResult r =
                    traced_cluster.run(*allocator, &pool);
                const std::chrono::duration<double> elapsed =
                    std::chrono::steady_clock::now() - start;
                if (rep == 0 || elapsed.count() < best_s) {
                    best_s = elapsed.count();
                    intervals = r.intervals;
                }
            }
            for (auto &sink : sinks)
                sink->sync();
            sinks.clear();
            tracers.clear();
            for (size_t i = 0; i < cores; ++i) {
                std::remove(("bench_cluster_trace.core" +
                             std::to_string(i) + ".tmp.bin")
                                .c_str());
            }
            const double per_sec = best_s > 0.0
                ? static_cast<double>(intervals * cores) / best_s
                : 0.0;
            timings.push_back(
                {cores, "uniform+trace", best_s, intervals, per_sec});
            std::printf("cluster: %4zu cores %-8s %7.3f s "
                        "(%5llu intervals, %8.0f core-intervals/s)\n",
                        cores, "uniform+trace", best_s,
                        static_cast<unsigned long long>(intervals),
                        per_sec);
        }
    }

    const char *path_env = std::getenv("AAPM_CLUSTER_JSON");
    const std::string path =
        path_env && *path_env ? path_env : "BENCH_cluster.json";
    const auto recorded = recordedClusterConfigs(path);
    const bool guard_off = std::getenv("AAPM_BENCH_NO_GUARD") != nullptr;
    bool regressed = false;
    for (const Timing &t : timings) {
        const auto it = recorded.find(
            t.allocator + "@" + std::to_string(t.cores));
        if (it == recorded.end() || it->second <= 0.0)
            continue;
        if (t.coreIntervalsPerSec < 0.8 * it->second) {
            std::fprintf(stderr,
                         "cluster throughput regression: %s at %zu "
                         "cores runs %.0f core-intervals/s, >20%% below "
                         "the recorded %.0f in %s\n",
                         t.allocator.c_str(), t.cores,
                         t.coreIntervalsPerSec, it->second, path.c_str());
            regressed = true;
        }
    }
    if (regressed && !guard_off) {
        std::fprintf(stderr,
                     "set AAPM_BENCH_NO_GUARD=1 to override\n");
        return 1;
    }

    std::ofstream out(path);
    out.precision(6);
    out << "{\n"
        << "  \"benchmark\": \"cluster_step_throughput\",\n"
        << "  \"interval_ms\": "
        << ticksToSeconds(config.sampleInterval) * 1e3 << ",\n"
        << "  \"pool_jobs\": " << pool.jobs() << ",\n"
        << "  \"configs\": [\n";
    for (size_t i = 0; i < timings.size(); ++i) {
        out << "    {\"cores\": " << timings[i].cores
            << ", \"allocator\": \"" << timings[i].allocator << "\""
            << ", \"seconds\": " << timings[i].seconds
            << ", \"intervals\": " << timings[i].intervals
            << ", \"core_intervals_per_sec\": "
            << timings[i].coreIntervalsPerSec << "}"
            << (i + 1 < timings.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return 0;
}

/**
 * Read the per-core-count serving baselines recorded in an existing
 * BENCH_serving.json, keyed "rps@<cores>" (wall-clock requests served
 * per second, higher is better) and "p99@<cores>" (simulated p99
 * completion time in ms, lower is better and deterministic). Empty
 * when the file is absent. Relies on the one-row-per-line layout
 * emitServingBaseline() writes.
 */
std::map<std::string, double>
recordedServingBaseline(const std::string &path)
{
    std::map<std::string, double> recorded;
    std::ifstream in(path);
    if (!in)
        return recorded;
    std::string line;
    while (std::getline(in, line)) {
        const auto value = [&line](const std::string &key, double &out) {
            const size_t pos = line.find("\"" + key + "\":");
            if (pos == std::string::npos)
                return false;
            out = std::strtod(line.c_str() + pos + key.size() + 3,
                              nullptr);
            return true;
        };
        double cores = 0.0, rps = 0.0, p99 = 0.0;
        if (value("cores", cores) &&
            value("requests_per_wall_sec", rps) &&
            value("p99_ms", p99)) {
            const std::string tag = std::to_string(
                static_cast<long>(cores));
            recorded["rps@" + tag] = rps;
            recorded["p99@" + tag] = p99;
        }
    }
    return recorded;
}

/**
 * Serving baseline: the open-loop request scenario (default
 * three-class mix, Poisson arrivals, JSQ dispatch, 50 ms SLO) on
 * power-capped PM clusters at 64 and 256 cores, uniform allocation,
 * 0.5 s of traffic at ~40% of the capped cluster's capacity. Two
 * numbers per row go into BENCH_serving.json (override with
 * AAPM_SERVING_JSON):
 *
 *   requests_per_wall_sec  requests stepped per wall-clock second —
 *                          the serving analogue of core-intervals/s
 *                          (host-speed dependent, higher is better)
 *   p99_ms                 simulated p99 completion time under the cap
 *                          (deterministic, lower is better)
 *
 * Regression gate, same contract as the other guards: a recorded
 * throughput more than 20% above this build's, or a recorded p99 more
 * than 20% below it, fails the binary and leaves the file untouched;
 * a run that completes zero requests fails outright.
 * AAPM_BENCH_NO_GUARD=1 overrides.
 */
int
emitServingBaseline()
{
    const PlatformConfig config;
    const auto power = std::make_shared<PowerEstimator>(
        PowerEstimator::paperPentiumM());
    const PerfEstimator perf;
    const double limit = 7.0;

    const GovernorFactory pm_factory = [power, limit] {
        return std::make_unique<PerformanceMaximizer>(
            *power, PmConfig{.powerLimitW = limit});
    };

    struct Row
    {
        size_t cores;
        double budgetW;
        double rateRps;
        double wallSeconds;
        double requestsPerWallSec;
        ServingResult result;
    };
    std::vector<Row> rows;
    ThreadPool pool;
    for (size_t cores : {64u, 256u}) {
        ClusterConfig cc;
        for (size_t i = 0; i < cores; ++i) {
            ClusterCoreConfig core;
            core.platform = config;
            core.governor = pm_factory;
            core.powerModel = power.get();
            core.perfModel = &perf;
            cc.cores.push_back(std::move(core));
        }
        cc.budgetW = limit * static_cast<double>(cores);
        cc.recordTrace = false;

        ServingConfig serving;
        // ~40% of the capped cluster's sustainable rate (the default
        // mix averages ~8.7e6 instr/request; a 7 W core sustains
        // roughly 100 of them per second).
        serving.traffic.rateRps = 40.0 * static_cast<double>(cores);
        serving.traffic.seed = 42;
        serving.horizonS = 0.5;
        serving.sloS = 0.05;

        UniformAllocator uniform;
        double best_s = 0.0;
        ServingResult best;
        for (int rep = 0; rep < 2; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            ServingResult r =
                runServing(cc, serving, uniform, &pool);
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            if (rep == 0 || elapsed.count() < best_s) {
                best_s = elapsed.count();
                best = std::move(r);
            }
        }
        const double per_sec = best_s > 0.0
            ? static_cast<double>(best.offered) / best_s
            : 0.0;
        std::printf("serving: %4zu cores %6.0f rps offered, %llu "
                    "requests in %.3f s wall (%6.0f req/s stepped), "
                    "p99 %.2f ms, %.2f%% SLO misses\n",
                    cores, serving.traffic.rateRps,
                    static_cast<unsigned long long>(best.offered),
                    best_s, per_sec, best.p99S * 1e3,
                    best.sloViolationFrac * 100.0);
        rows.push_back({cores, cc.budgetW, serving.traffic.rateRps,
                        best_s, per_sec, std::move(best)});
    }

    const char *path_env = std::getenv("AAPM_SERVING_JSON");
    const std::string path =
        path_env && *path_env ? path_env : "BENCH_serving.json";
    const auto recorded = recordedServingBaseline(path);
    const bool guard_off = std::getenv("AAPM_BENCH_NO_GUARD") != nullptr;
    bool regressed = false;
    for (const Row &row : rows) {
        if (row.result.completed == 0) {
            std::fprintf(stderr,
                         "serving regression: %zu-core run completed "
                         "zero requests\n", row.cores);
            regressed = true;
            continue;
        }
        const std::string tag = std::to_string(row.cores);
        const auto rps = recorded.find("rps@" + tag);
        if (rps != recorded.end() && rps->second > 0.0 &&
            row.requestsPerWallSec < 0.8 * rps->second) {
            std::fprintf(stderr,
                         "serving throughput regression: %zu cores "
                         "step %.0f req/s, >20%% below the recorded "
                         "%.0f in %s\n", row.cores,
                         row.requestsPerWallSec, rps->second,
                         path.c_str());
            regressed = true;
        }
        const auto p99 = recorded.find("p99@" + tag);
        if (p99 != recorded.end() && p99->second > 0.0 &&
            row.result.p99S * 1e3 > 1.2 * p99->second) {
            std::fprintf(stderr,
                         "serving latency regression: %zu cores p99 "
                         "%.2f ms, >20%% above the recorded %.2f ms "
                         "in %s\n", row.cores, row.result.p99S * 1e3,
                         p99->second, path.c_str());
            regressed = true;
        }
    }
    if (regressed && !guard_off) {
        std::fprintf(stderr,
                     "set AAPM_BENCH_NO_GUARD=1 to override\n");
        return 1;
    }

    std::ofstream out(path);
    out.precision(6);
    out << "{\n"
        << "  \"benchmark\": \"serving_baseline\",\n"
        << "  \"arrival\": \"poisson\",\n"
        << "  \"dispatch\": \"jsq\",\n"
        << "  \"allocator\": \"uniform\",\n"
        << "  \"slo_ms\": 50,\n"
        << "  \"horizon_s\": 0.5,\n"
        << "  \"seed\": 42,\n"
        << "  \"pool_jobs\": " << pool.jobs() << ",\n"
        << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        const ServingResult &r = row.result;
        out << "    {\"cores\": " << row.cores
            << ", \"budget_w\": " << row.budgetW
            << ", \"rate_rps\": " << row.rateRps
            << ", \"offered\": " << r.offered
            << ", \"completed\": " << r.completed
            << ", \"dropped\": " << r.dropped
            << ", \"p50_ms\": " << r.p50S * 1e3
            << ", \"p99_ms\": " << r.p99S * 1e3
            << ", \"p999_ms\": " << r.p999S * 1e3
            << ", \"slo_violation_frac\": " << r.sloViolationFrac
            << ", \"energy_j\": " << r.cluster.trueEnergyJ
            << ", \"wall_seconds\": " << row.wallSeconds
            << ", \"requests_per_wall_sec\": "
            << row.requestsPerWallSec << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return 0;
}

/**
 * Read the idle baselines recorded in an existing BENCH_idle.json,
 * keyed "energy@race" (deterministic Joules, lower is better),
 * "p99@race" (deterministic ms, lower is better) and "rps@race"
 * (wall-clock requests stepped per second, host-speed dependent,
 * higher is better). Empty when the file is absent. Relies on the
 * one-row-per-line layout emitIdleBaseline() writes.
 */
std::map<std::string, double>
recordedIdleBaseline(const std::string &path)
{
    std::map<std::string, double> recorded;
    std::ifstream in(path);
    if (!in)
        return recorded;
    std::string line;
    while (std::getline(in, line)) {
        const auto value = [&line](const std::string &key, double &out) {
            const size_t pos = line.find("\"" + key + "\":");
            if (pos == std::string::npos)
                return false;
            out = std::strtod(line.c_str() + pos + key.size() + 3,
                              nullptr);
            return true;
        };
        const size_t tag_pos = line.find("\"policy\": \"");
        if (tag_pos == std::string::npos)
            continue;
        const size_t tag_start = tag_pos + 11;
        const size_t tag_end = line.find('"', tag_start);
        if (tag_end == std::string::npos)
            continue;
        const std::string tag =
            line.substr(tag_start, tag_end - tag_start);
        double energy = 0.0, p99 = 0.0, rps = 0.0;
        if (value("energy_j", energy) && value("p99_ms", p99) &&
            value("requests_per_wall_sec", rps)) {
            recorded["energy@" + tag] = energy;
            recorded["p99@" + tag] = p99;
            recorded["rps@" + tag] = rps;
        }
    }
    return recorded;
}

/**
 * Idle baseline: the ISSUE's flagship race-vs-crawl comparison on a
 * 256-core bursty serving cluster. Both policies face the same seeded
 * MMPP traffic (default mix, JSQ dispatch, 50 ms SLO, 0.5 s horizon):
 *
 *   race   RACE governor over the two-deep reference ladder
 *          (C1:0.4W:2us;C6:0.05W:150us) — sprint the backlog at the
 *          power cap, then park the core in the deepest state the
 *          menu rule trusts.
 *   crawl  StaticClock pinned at the slowest p-state with a C0-only
 *          ladder — stretch the work, never sleep.
 *
 * Three numbers per row go into BENCH_idle.json (override with
 * AAPM_IDLE_JSON): energy_j and p99_ms (deterministic) plus
 * requests_per_wall_sec (host-speed dependent). The guard fails the
 * binary when the race row regresses >20% against the recorded file
 * on any of the three, when either policy completes zero requests,
 * or when the subsystem's reason to exist stops holding: race must
 * finish the same traffic with less energy at an equal-or-better SLO
 * violation fraction than crawl. AAPM_BENCH_NO_GUARD=1 overrides.
 */
int
emitIdleBaseline()
{
    const auto power = std::make_shared<PowerEstimator>(
        PowerEstimator::paperPentiumM());
    const PerfEstimator perf;
    const double limit = 7.0;
    const size_t cores = 256;
    const char *ladder_spec = "C1:0.4W:2us;C6:0.05W:150us";
    const auto ladder = std::make_shared<CStateLadder>(
        CStateLadder::parse(ladder_spec, "idle baseline ladder"));

    struct Policy
    {
        const char *name;
        CStateLadder ladder;
        GovernorFactory factory;
    };
    const std::vector<Policy> policies = {
        {"race", *ladder,
         [power, ladder, limit] {
             return std::make_unique<RaceToIdleGovernor>(
                 *power, *ladder, PmConfig{.powerLimitW = limit});
         }},
        {"crawl", CStateLadder(),
         [] { return std::make_unique<StaticClock>(0); }},
    };

    struct Row
    {
        std::string policy;
        double wallSeconds;
        double requestsPerWallSec;
        double sleepCoreS;
        uint64_t wakeups;
        ServingResult result;
    };
    std::vector<Row> rows;
    ThreadPool pool;
    for (const Policy &policy : policies) {
        ClusterConfig cc;
        for (size_t i = 0; i < cores; ++i) {
            ClusterCoreConfig core;
            core.platform = PlatformConfig();
            core.platform.cstates = policy.ladder;
            core.governor = policy.factory;
            core.powerModel = power.get();
            core.perfModel = &perf;
            cc.cores.push_back(std::move(core));
        }
        cc.budgetW = limit * static_cast<double>(cores);
        cc.recordTrace = false;

        ServingConfig serving;
        // Same ~40% load point as the serving baseline, but bursty:
        // the MMPP calm/burst alternation is what gives the race
        // policy its idle gaps and the crawl policy its queue spikes.
        serving.traffic.rateRps = 40.0 * static_cast<double>(cores);
        serving.traffic.process = ArrivalProcess::Bursty;
        serving.traffic.seed = 42;
        serving.horizonS = 0.5;
        serving.sloS = 0.05;

        UniformAllocator uniform;
        double best_s = 0.0;
        ServingResult best;
        for (int rep = 0; rep < 2; ++rep) {
            const auto start = std::chrono::steady_clock::now();
            ServingResult r =
                runServing(cc, serving, uniform, &pool);
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            if (rep == 0 || elapsed.count() < best_s) {
                best_s = elapsed.count();
                best = std::move(r);
            }
        }
        double sleep_s = 0.0;
        uint64_t wakeups = 0;
        for (const RunResult &r : best.cluster.cores) {
            sleep_s += r.idle.sleepSeconds;
            wakeups += r.idle.wakeups;
        }
        const double per_sec = best_s > 0.0
            ? static_cast<double>(best.offered) / best_s
            : 0.0;
        std::printf("idle: %-5s %6.1f J, p99 %6.2f ms, %.2f%% SLO "
                    "misses, %7.1f core-s asleep, %llu wakeups, "
                    "%.3f s wall\n",
                    policy.name, best.cluster.trueEnergyJ,
                    best.p99S * 1e3, best.sloViolationFrac * 100.0,
                    sleep_s,
                    static_cast<unsigned long long>(wakeups), best_s);
        rows.push_back({policy.name, best_s, per_sec, sleep_s,
                        wakeups, std::move(best)});
    }

    const char *path_env = std::getenv("AAPM_IDLE_JSON");
    const std::string path =
        path_env && *path_env ? path_env : "BENCH_idle.json";
    const auto recorded = recordedIdleBaseline(path);
    const bool guard_off = std::getenv("AAPM_BENCH_NO_GUARD") != nullptr;
    bool regressed = false;
    for (const Row &row : rows) {
        if (row.result.completed == 0) {
            std::fprintf(stderr,
                         "idle regression: %s run completed zero "
                         "requests\n", row.policy.c_str());
            regressed = true;
        }
    }
    const Row &race = rows[0];
    const Row &crawl = rows[1];
    if (race.result.cluster.trueEnergyJ >=
        crawl.result.cluster.trueEnergyJ) {
        std::fprintf(stderr,
                     "idle regression: race burned %.1f J, not below "
                     "crawl's %.1f J\n",
                     race.result.cluster.trueEnergyJ,
                     crawl.result.cluster.trueEnergyJ);
        regressed = true;
    }
    if (race.result.sloViolationFrac >
        crawl.result.sloViolationFrac) {
        std::fprintf(stderr,
                     "idle regression: race missed the SLO on %.2f%% "
                     "of requests, worse than crawl's %.2f%%\n",
                     race.result.sloViolationFrac * 100.0,
                     crawl.result.sloViolationFrac * 100.0);
        regressed = true;
    }
    if (race.sleepCoreS <= 0.0) {
        std::fprintf(stderr,
                     "idle regression: race accumulated no sleep "
                     "residency\n");
        regressed = true;
    }
    const auto energy = recorded.find("energy@race");
    if (energy != recorded.end() && energy->second > 0.0 &&
        race.result.cluster.trueEnergyJ > 1.2 * energy->second) {
        std::fprintf(stderr,
                     "idle energy regression: race burned %.1f J, "
                     ">20%% above the recorded %.1f in %s\n",
                     race.result.cluster.trueEnergyJ, energy->second,
                     path.c_str());
        regressed = true;
    }
    const auto p99 = recorded.find("p99@race");
    if (p99 != recorded.end() && p99->second > 0.0 &&
        race.result.p99S * 1e3 > 1.2 * p99->second) {
        std::fprintf(stderr,
                     "idle latency regression: race p99 %.2f ms, "
                     ">20%% above the recorded %.2f ms in %s\n",
                     race.result.p99S * 1e3, p99->second,
                     path.c_str());
        regressed = true;
    }
    const auto rps = recorded.find("rps@race");
    if (rps != recorded.end() && rps->second > 0.0 &&
        race.requestsPerWallSec < 0.8 * rps->second) {
        std::fprintf(stderr,
                     "idle throughput regression: race stepped %.0f "
                     "req/s, >20%% below the recorded %.0f in %s\n",
                     race.requestsPerWallSec, rps->second,
                     path.c_str());
        regressed = true;
    }
    if (regressed && !guard_off) {
        std::fprintf(stderr,
                     "set AAPM_BENCH_NO_GUARD=1 to override\n");
        return 1;
    }

    std::ofstream out(path);
    out.precision(6);
    out << "{\n"
        << "  \"benchmark\": \"idle_baseline\",\n"
        << "  \"cores\": " << cores << ",\n"
        << "  \"budget_w\": " << limit * static_cast<double>(cores)
        << ",\n"
        << "  \"arrival\": \"bursty\",\n"
        << "  \"ladder\": \"" << ladder_spec << "\",\n"
        << "  \"slo_ms\": 50,\n"
        << "  \"horizon_s\": 0.5,\n"
        << "  \"seed\": 42,\n"
        << "  \"pool_jobs\": " << pool.jobs() << ",\n"
        << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        const ServingResult &r = row.result;
        out << "    {\"policy\": \"" << row.policy << "\""
            << ", \"energy_j\": " << r.cluster.trueEnergyJ
            << ", \"offered\": " << r.offered
            << ", \"completed\": " << r.completed
            << ", \"dropped\": " << r.dropped
            << ", \"p50_ms\": " << r.p50S * 1e3
            << ", \"p99_ms\": " << r.p99S * 1e3
            << ", \"slo_violation_frac\": " << r.sloViolationFrac
            << ", \"sleep_core_s\": " << row.sleepCoreS
            << ", \"wakeups\": " << row.wakeups
            << ", \"wall_seconds\": " << row.wallSeconds
            << ", \"requests_per_wall_sec\": "
            << row.requestsPerWallSec << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    emitSweepTimings();
    const int faults_rc = emitFaultBaseline();
    const int kernel_rc = emitKernelTimings();
    const int cluster_rc = emitClusterTimings();
    const int serving_rc = emitServingBaseline();
    const int idle_rc = emitIdleBaseline();
    return kernel_rc != 0 ? kernel_rc
        : cluster_rc != 0  ? cluster_rc
        : serving_rc != 0  ? serving_rc
        : idle_rc != 0     ? idle_rc
                           : faults_rc;
}
