/**
 * @file
 * Figure 8 reproduction: PowerSave on ammp with an 80% performance
 * floor. The governor should drop the frequency during ammp's
 * memory-bound phases and restore it for the compute phases, keeping
 * delivered performance above the floor.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Fig 8 — PowerSave on ammp, 80%% performance floor\n\n");

    const Workload &ammp = b.workload("ammp");
    const RunResult base =
        b.platform.runAtPState(ammp, b.config.pstates.maxIndex());
    auto ps = b.makePs(0.8);
    const RunResult r = b.platform.run(ammp, *ps);
    if (auto csv = maybeCsv("fig08_ps_trace")) {
        csv->row({"series", "t_s", "measured_w", "true_w", "freq_mhz",
                  "ipc", "dpc", "temp_c"});
        traceToCsv(*csv, "ps-80", r.trace);
        traceToCsv(*csv, "unconstrained", base.trace);
    }

    std::printf("%8s  %9s  %9s  %7s\n", "t (s)", "power (W)",
                "freq (MHz)", "IPC");
    const auto &samples = r.trace.samples();
    const size_t step = std::max<size_t>(1, samples.size() / 50);
    for (size_t i = 0; i < samples.size(); i += step) {
        std::printf("%8.2f  %9.2f  %9.0f  %7.3f\n",
                    ticksToSeconds(samples[i].when),
                    samples[i].measuredW, samples[i].freqMhz,
                    samples[i].ipc);
    }

    const double perf = base.seconds / r.seconds;
    std::printf("\nsummary: %.2f s vs %.2f s at 2000 MHz -> "
                "%.1f%% of peak performance (floor: 80%%)\n",
                r.seconds, base.seconds, perf * 100.0);
    std::printf("energy: %.1f J vs %.1f J -> %.1f%% savings\n",
                r.trueEnergyJ, base.trueEnergyJ,
                (1.0 - r.trueEnergyJ / base.trueEnergyJ) * 100.0);

    // P-state residency: the trace's visible modulation.
    std::printf("residency:");
    for (size_t i = 0; i < r.dvfs.residency.size(); ++i) {
        const double frac = static_cast<double>(r.dvfs.residency[i]) /
                            static_cast<double>(secondsToTicks(
                                r.seconds));
        if (frac > 0.005) {
            std::printf("  %4.0f MHz: %.0f%%",
                        b.config.pstates[i].freqMhz, frac * 100.0);
        }
    }
    std::printf("\nexpected: frequency drops in memory-bound phases, "
                "returns to high states in compute phases; performance "
                "stays above the floor.\n");
    return 0;
}
