/**
 * @file
 * Figure 1 reproduction: power variation across the SPEC CPU2000 suite
 * at a fixed 2 GHz. The paper's headline observation is that the range
 * spans more than 35% of the chip's peak operating power even though
 * the system-perceived load is 100% throughout.
 */

#include <algorithm>

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Fig 1 — SPEC CPU2000 power at fixed 2000 MHz "
                "(10 ms samples)\n\n");

    struct Row
    {
        std::string name;
        double mean, p5, p95, min, max;
    };
    std::vector<Row> rows;

    for (const auto &w : b.suite) {
        const RunResult r =
            b.platform.runAtPState(w, b.config.pstates.maxIndex());
        SampleSeries series;
        for (const auto &s : r.trace.samples())
            series.add(s.measuredW);
        rows.push_back({w.name(), series.mean(), series.quantile(0.05),
                        series.quantile(0.95), series.min(),
                        series.max()});
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &c) { return a.mean < c.mean; });

    if (auto csv = maybeCsv("fig01_power_variation")) {
        csv->row({"benchmark", "mean_w", "p5_w", "p95_w", "min_w",
                  "max_w"});
        for (const auto &r : rows) {
            csv->row({r.name, std::to_string(r.mean),
                      std::to_string(r.p5), std::to_string(r.p95),
                      std::to_string(r.min), std::to_string(r.max)});
        }
    }

    TextTable t;
    t.header({"benchmark", "mean (W)", "p5", "p95", "min", "max"});
    for (const auto &r : rows) {
        t.row({r.name, TextTable::num(r.mean, 2), TextTable::num(r.p5, 2),
               TextTable::num(r.p95, 2), TextTable::num(r.min, 2),
               TextTable::num(r.max, 2)});
    }
    std::printf("%s\n", t.str().c_str());

    const double lo = rows.front().mean;
    const double hi = rows.back().mean;
    double peak_sample = 0.0;
    for (const auto &r : rows)
        peak_sample = std::max(peak_sample, r.max);

    std::printf("suite mean-power range: %.2f W (%s) .. %.2f W (%s)\n",
                lo, rows.front().name.c_str(), hi,
                rows.back().name.c_str());
    std::printf("range / peak sample = %.0f%%  "
                "(paper: >35%% of peak operating power)\n",
                (hi - lo) / peak_sample * 100.0);
    std::printf("hottest 10 ms sample: %.2f W (paper: galgel exceeds "
                "18 W in individual samples)\n", peak_sample);
    return 0;
}
