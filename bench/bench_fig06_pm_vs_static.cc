/**
 * @file
 * Figure 6 reproduction: suite performance versus power limit for PM's
 * dynamic clocking against worst-case static clocking. Normalized
 * performance is unconstrained total execution time divided by
 * constrained total execution time (the paper's definition).
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Fig 6 — suite performance vs power limit: dynamic "
                "(PM) vs static clocking\n\n");

    const SuiteResult unconstrained =
        runSuiteAtPState(b.platform, b.suite,
                         b.config.pstates.maxIndex());
    const double t_free = unconstrained.totalSeconds();
    const auto worst = worstCasePowerTable(b.platform);

    auto csv = maybeCsv("fig06_pm_vs_static");
    if (csv)
        csv->row({"limit_w", "pm_perf", "static_mhz", "static_perf"});
    TextTable t;
    t.header({"limit (W)", "PM perf", "static freq (MHz)",
              "static perf"});
    for (double limit : paperPowerLimits()) {
        const SuiteResult dynamic = runSuite(
            b.platform, b.suite, [&] { return b.makePm(limit); });
        const size_t sidx = StaticClock::chooseForLimit(worst, limit);
        const SuiteResult fixed =
            runSuiteAtPState(b.platform, b.suite, sidx);
        t.row({TextTable::num(limit, 1),
               TextTable::num(t_free / dynamic.totalSeconds(), 3),
               TextTable::num(b.config.pstates[sidx].freqMhz, 0),
               TextTable::num(t_free / fixed.totalSeconds(), 3)});
        if (csv) {
            csv->rowNums({limit, t_free / dynamic.totalSeconds(),
                          b.config.pstates[sidx].freqMhz,
                          t_free / fixed.totalSeconds()});
        }
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("expected: PM (line) dominates static clocking (dots) "
                "at every limit; the gap narrows only when the limit "
                "nears a fixed frequency's own peak power.\n");
    return 0;
}
