/**
 * @file
 * Figure 6 reproduction: suite performance versus power limit for PM's
 * dynamic clocking against worst-case static clocking. Normalized
 * performance is unconstrained total execution time divided by
 * constrained total execution time (the paper's definition).
 */

#include <map>

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Fig 6 — suite performance vs power limit: dynamic "
                "(PM) vs static clocking\n\n");

    const auto worst = worstCasePowerTable(b.platform);
    const auto limits = paperPowerLimits();

    // The whole figure as one grid: the unconstrained baseline, one PM
    // suite per limit, and one static suite per distinct static
    // frequency (several limits map to the same one).
    SweepGrid grid;
    const size_t h_free =
        grid.addSuiteAtPState(b.suite, b.config.pstates.maxIndex());
    std::vector<size_t> h_pm;
    std::map<size_t, size_t> h_static;   // sidx -> group handle
    for (double limit : limits) {
        h_pm.push_back(
            grid.addSuite(b.suite, [&b, limit] { return b.makePm(limit); }));
        const size_t sidx = StaticClock::chooseForLimit(worst, limit);
        if (!h_static.count(sidx))
            h_static[sidx] = grid.addSuiteAtPState(b.suite, sidx);
    }
    const SweepResults res = b.sweep.run(grid);

    const double t_free = res.suite(h_free).totalSeconds();

    auto csv = maybeCsv("fig06_pm_vs_static");
    if (csv)
        csv->row({"limit_w", "pm_perf", "static_mhz", "static_perf"});
    TextTable t;
    t.header({"limit (W)", "PM perf", "static freq (MHz)",
              "static perf"});
    for (size_t i = 0; i < limits.size(); ++i) {
        const double limit = limits[i];
        const SuiteResult dynamic = res.suite(h_pm[i]);
        const size_t sidx = StaticClock::chooseForLimit(worst, limit);
        const SuiteResult fixed = res.suite(h_static.at(sidx));
        t.row({TextTable::num(limit, 1),
               TextTable::num(t_free / dynamic.totalSeconds(), 3),
               TextTable::num(b.config.pstates[sidx].freqMhz, 0),
               TextTable::num(t_free / fixed.totalSeconds(), 3)});
        if (csv) {
            csv->rowNums({limit, t_free / dynamic.totalSeconds(),
                          b.config.pstates[sidx].freqMhz,
                          t_free / fixed.totalSeconds()});
        }
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("expected: PM (line) dominates static clocking (dots) "
                "at every limit; the gap narrows only when the limit "
                "nears a fixed frequency's own peak power.\n");
    return 0;
}
