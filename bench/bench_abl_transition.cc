/**
 * @file
 * Design ablation: DVFS transition cost. The Pentium M's p-state
 * change halts the core for ~10 us (plus VRM slew); this harness
 * scales that cost from free to 10 ms and measures when switching
 * overhead starts to erode PS's energy win on the phase-alternating
 * ammp — the case with the most transitions.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Ablation — DVFS transition cost (PS-80 on ammp)\n\n");

    TextTable t;
    t.header({"halt per switch (us)", "perf vs floor (%)",
              "energy savings (%)", "transitions", "stall time (ms)"});
    for (double us : {0.0, 10.0, 100.0, 1000.0, 10000.0}) {
        PlatformConfig config = b.config;
        config.dvfs.transitionUs = us;
        config.dvfs.slewUsPer100mV = us > 0.0 ? 5.0 : 0.0;
        Platform platform(config);
        const Workload ammp =
            specWorkload("ammp", config.core, targetSeconds());
        const RunResult base = platform.runAtPState(
            ammp, config.pstates.maxIndex());
        auto ps = b.makePs(0.8);
        const RunResult r = platform.run(ammp, *ps);
        t.row({TextTable::num(us, 0),
               TextTable::num(base.seconds / r.seconds * 100.0, 1),
               TextTable::num(
                   (1.0 - r.trueEnergyJ / base.trueEnergyJ) * 100.0, 1),
               TextTable::num(static_cast<int64_t>(r.dvfs.transitions)),
               TextTable::num(
                   ticksToSeconds(r.dvfs.stallTicks) * 1000.0, 1)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("expected: the Pentium M's ~10 us halt is free at the "
                "paper's 10 ms control interval (overhead ratio 1e-3); "
                "costs approaching the control interval itself start "
                "eating the delivered performance.\n");
    return 0;
}
