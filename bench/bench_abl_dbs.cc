/**
 * @file
 * Baseline ablation: demand-based switching vs PowerSave across system
 * load levels — the paper's introduction argument made quantitative.
 * DBS saves energy only where idle time exists; at 100% load it saves
 * nothing, while PS keeps an explicit performance contract at every
 * load level.
 */

#include "bench_util.hh"

int
main()
{
    using namespace aapm_bench;
    setLogLevel(LogLevel::Quiet);
    Bench &b = bench();

    std::printf("Ablation — DBS vs PS across load levels "
                "(gzip-like busy phase, 100 ms duty period)\n\n");

    // The busy phase: gzip's compression loop.
    const Phase busy = b.workload("gzip").phases()[0];

    TextTable t;
    t.header({"load (%)", "base energy (J)", "DBS save (%)",
              "DBS slowdown (%)", "PS-80 save (%)",
              "PS-80 slowdown (%)"});
    for (double duty : {0.25, 0.50, 0.75, 1.00}) {
        const Workload w = dutyCycledWorkload(
            "duty", busy, duty, 0.1, targetSeconds(), b.config.core);
        const RunResult base =
            b.platform.runAtPState(w, b.config.pstates.maxIndex());

        DemandBasedSwitching dbs(b.config.pstates);
        const RunResult r_dbs = b.platform.run(w, dbs);
        auto ps = b.makePs(0.8);
        const RunResult r_ps = b.platform.run(w, *ps);

        t.row({TextTable::num(duty * 100.0, 0),
               TextTable::num(base.trueEnergyJ, 1),
               TextTable::num(
                   (1.0 - r_dbs.trueEnergyJ / base.trueEnergyJ) * 100.0,
                   1),
               TextTable::num(
                   (r_dbs.seconds / base.seconds - 1.0) * 100.0, 1),
               TextTable::num(
                   (1.0 - r_ps.trueEnergyJ / base.trueEnergyJ) * 100.0,
                   1),
               TextTable::num(
                   (r_ps.seconds / base.seconds - 1.0) * 100.0, 1)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("expected: DBS savings shrink toward zero as load "
                "approaches 100%% (the paper's motivation for PS); PS "
                "saves at every load level within its floor.\n");
    return 0;
}
